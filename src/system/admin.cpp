#include "system/admin.h"

#include <algorithm>
#include <charconv>
#include <stdexcept>

namespace ibbe::system {

using core::Identity;

namespace {

constexpr int max_cas_retries = 8;
constexpr int max_log_publish_attempts = 64;

/// Parses the decimal id out of a group-relative filename of the form
/// "s<digits>" / "c<digits>" / "o<digits>" / "d<digits>" or
/// "gk<digits>.sealed". nullopt for anything else — note that "oplog" and
/// "index" fail the digit parse, which is why every sweep below matches
/// files through this helper and never by raw prefix.
std::optional<std::uint64_t> parse_numbered(const std::string& name,
                                            const std::string& prefix,
                                            const std::string& suffix) {
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const char* first = name.data() + prefix.size();
  const char* last = name.data() + name.size() - suffix.size();
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

}  // namespace

AdminApi::AdminApi(enclave::IbbeEnclave& enclave, cloud::CloudStore& cloud,
                   pki::EcdsaKeyPair signing_key, AdminConfig config,
                   std::uint64_t seed)
    : enclave_(enclave),
      cloud_(cloud),
      signing_key_(std::move(signing_key)),
      config_(std::move(config)),
      rng_(seed) {
  if (config_.partition_size == 0) {
    throw std::invalid_argument("AdminApi: partition_size must be positive");
  }
  if (config_.partition_size > enclave_.public_key().max_receivers()) {
    throw std::invalid_argument(
        "AdminApi: partition_size exceeds the enclave's PK bound");
  }
}

AdminApi::GroupState& AdminApi::state_of(const GroupId& gid) {
  auto it = cache_.find(gid);
  if (it == cache_.end()) throw std::out_of_range("AdminApi: unknown group " + gid);
  return it->second;
}

const AdminApi::GroupState& AdminApi::state_of(const GroupId& gid) const {
  auto it = cache_.find(gid);
  if (it == cache_.end()) throw std::out_of_range("AdminApi: unknown group " + gid);
  return it->second;
}

PartitionId AdminApi::fresh_partition_id(GroupState& state) const {
  // High 32 bits distinguish administrators so concurrent creations never
  // collide; with the default nonce of 0 this degenerates to 0, 1, 2, ...
  return (static_cast<PartitionId>(config_.admin_nonce) << 32) |
         state.partition_counter++;
}

std::uint64_t AdminApi::fresh_gk_epoch(GroupState& state) const {
  // Allocated like partition ids: the epoch doubles as the sealed gk's cloud
  // filename, so two admins rotating concurrently must never share one.
  return (static_cast<std::uint64_t>(config_.admin_nonce) << 32) |
         state.epoch_counter++;
}

std::uint64_t AdminApi::fresh_object_id(GroupState& state) const {
  // One counter for shards, bundles and overlays: the path prefix (s/c/o)
  // already tells the kinds apart, and a single sequence keeps recover()'s
  // bump-past-leftovers scan simple.
  return (static_cast<std::uint64_t>(config_.admin_nonce) << 32) |
         state.object_counter++;
}

std::size_t AdminApi::partition_index(const GroupState& state,
                                      PartitionId pid) const {
  for (std::size_t p = 0; p < state.partitions.size(); ++p) {
    if (state.partitions[p].id == pid) return p;
  }
  throw std::logic_error("AdminApi: unknown partition id");
}

std::size_t AdminApi::shard_index_of(const GroupState& state,
                                     PartitionId pid) const {
  for (std::size_t s = 0; s < state.shards.size(); ++s) {
    const auto& pids = state.shards[s].pids;
    if (std::find(pids.begin(), pids.end(), pid) != pids.end()) return s;
  }
  throw std::logic_error("AdminApi: partition not in any shard");
}

std::size_t AdminApi::assign_to_shard(GroupState& state, PartitionId pid) {
  std::size_t cap = std::max<std::size_t>(state.shard_partition_target, 1);
  if (state.shards.empty() || state.shards.back().pids.size() >= cap) {
    state.shards.emplace_back();
  }
  state.shards.back().pids.push_back(pid);
  return state.shards.size() - 1;
}

void AdminApi::rewrite_shard(const GroupId& gid, GroupState& state,
                             std::size_t shard) {
  Shard& sh = state.shards[shard];
  IndexShard rec;
  rec.sid = fresh_object_id(state);
  rec.partitions.reserve(sh.pids.size());
  for (PartitionId pid : sh.pids) {
    const auto& p = state.partitions[partition_index(state, pid)];
    rec.partitions.emplace_back(pid, p.members);
  }
  auto env = SignedEnvelope::sign(signing_key_, rec.to_bytes());
  auto bytes = env.to_bytes();
  // Shard files are written once under a fresh id and never overwritten
  // (copy-on-write), so a blind retry of an ambiguous put is idempotent.
  with_retries([&] {
    cloud_.put(shard_path(gid, rec.sid), bytes);
    return 0;
  });
  sh.sid = rec.sid;
  sh.hash = content_hash(bytes);
}

void AdminApi::write_bundle(const GroupId& gid, GroupState& state) {
  CipherBundle bundle;
  bundle.entries.reserve(state.partitions.size());
  for (const auto& p : state.partitions) {
    bundle.entries.emplace_back(p.id, p.cipher);
  }
  auto id = fresh_object_id(state);
  auto env = SignedEnvelope::sign(signing_key_, bundle.to_bytes());
  auto bytes = env.to_bytes();
  with_retries([&] {
    cloud_.put(cipher_bundle_path(gid, id), bytes);
    return 0;
  });
  state.cipher_set = id;
  // A fresh bundle carries every partition's current ciphertext; overlays
  // written for the previous epoch are superseded wholesale.
  state.overlays.clear();
}

void AdminApi::write_overlay(const GroupId& gid, GroupState& state,
                             PartitionId pid) {
  CipherOverlay overlay;
  overlay.pid = pid;
  overlay.cipher = state.partitions[partition_index(state, pid)].cipher;
  auto id = fresh_object_id(state);
  auto env = SignedEnvelope::sign(signing_key_, overlay.to_bytes());
  auto bytes = env.to_bytes();
  with_retries([&] {
    cloud_.put(cipher_overlay_path(gid, id), bytes);
    return 0;
  });
  state.overlays[pid] = id;
}

void AdminApi::push_sealed_gk(const GroupId& gid, const GroupState& state) {
  auto bytes = state.sealed_gk.to_bytes();
  with_retries([&] {
    cloud_.put(sealed_gk_path(gid, state.gk_epoch), bytes);
    return 0;
  });
}

GroupManifest AdminApi::build_manifest(const GroupState& state) const {
  GroupManifest m;
  m.shards.reserve(state.shards.size());
  for (const auto& sh : state.shards) m.shards.push_back({sh.sid, sh.hash});
  m.cipher_set = state.cipher_set;
  m.overlays = state.overlays;
  m.gk_epoch = state.gk_epoch;
  m.log_head = state.freshness.log_head;
  m.freshness = state.freshness;
  m.delta_base = state.delta_base;
  return m;  // delta_hash stays zero; push_index fills the commit fields
}

bool AdminApi::push_index(const GroupId& gid, GroupState& state,
                          const LogHead& log_head) {
  // Tentative freshness attestation: the enclave signs one counter above
  // everything it (or this admin's last sync) knows committed, but persists
  // nothing yet — an abandoned CAS attempt must not open a gap between the
  // platform counter and the highest committed token.
  auto token = enclave_.ecall_attest_freshness(
      gid, state.freshness.counter, state.gk_epoch, log_head);

  const bool barrier = state.pending_delta.empty();
  Hash32 delta_hash{};
  std::uint64_t delta_base = state.delta_base;
  if (barrier) {
    // Snapshot barrier (creation, full re-partition): no delta exists for
    // this commit, and nothing older is foldable across it.
    delta_base = token.counter + 1;
  } else {
    IndexDelta delta;
    delta.seq = token.counter;
    delta.prev_log_head = state.freshness.log_head;
    delta.log_head = log_head;
    delta.ops = state.pending_delta;
    auto env = SignedEnvelope::sign(signing_key_, delta.to_bytes());
    auto bytes = env.to_bytes();
    // Delta names are keyed by the GLOBAL freshness counter, so a lost CAS
    // race (or a crashed predecessor's orphan) can leave a different payload
    // under d<seq>. A plain put is still safe: the committed manifest pins
    // its own delta by hash and chains the rest through the op-log heads, so
    // a client folding a clobbered delta falls back to a snapshot — it can
    // never fold the wrong ops silently.
    with_retries([&] {
      cloud_.put(delta_path(gid, delta.seq), bytes);
      return 0;
    });
    delta_hash = content_hash(bytes);
    if (delta_base == 0) delta_base = token.counter;  // first-ever delta
    std::uint64_t window = std::max<std::uint64_t>(config_.delta_window, 1);
    if (token.counter >= delta_base && token.counter - delta_base + 1 > window) {
      delta_base = token.counter + 1 - window;
    }
  }

  GroupManifest m = build_manifest(state);
  m.log_head = log_head;
  m.freshness = token;
  m.delta_base = delta_base;
  m.delta_hash = delta_hash;
  auto env = SignedEnvelope::sign(signing_key_, m.to_bytes());
  auto bytes = env.to_bytes();

  auto committed = [&](std::uint64_t version) {
    state.index_version = version;
    state.freshness = token;
    state.delta_base = delta_base;
    if (!barrier) stats_.deltas_published++;
    state.pending_delta.clear();
    // Only now does the counter become the platform's confirmed floor; any
    // manifest attested below it is henceforth provably rolled back.
    enclave_.ecall_confirm_freshness(gid, token.counter);
    publish_freshness_gossip(gid, token);
    return true;
  };

  // Always CAS-guarded, even with a single administrator: an ambiguous put
  // retried blindly could otherwise clobber a concurrent (or our own
  // half-applied) commit.
  std::optional<std::uint64_t> version;
  try {
    version = with_retries(
        [&] { return cloud_.put_cas(index_path(gid), bytes, state.index_version); });
  } catch (const cloud::TransientError&) {
    version = std::nullopt;  // exhausted retries: resolve by re-reading below
  }
  if (version) return committed(*version);
  // Version conflict — but an ambiguous put that DID apply makes our own
  // commit look like somebody else's. Re-read and compare payloads.
  try {
    auto current =
        with_retries([&] { return cloud_.get_versioned(index_path(gid)); });
    if (current && current->value == bytes) return committed(current->version);
  } catch (const cloud::TransientError&) {
    // Treat as a real conflict; the caller re-syncs and retries the op.
  }
  ++stats_.cas_conflicts;
  return false;
}

void AdminApi::check_index_freshness(const GroupId& gid,
                                     const GroupManifest& m) {
  if (m.freshness.counter == 0) {
    throw util::IntegrityError(
        "sync_from_cloud: manifest lacks a freshness attestation");
  }
  if (!m.freshness.verify(enclave_.freshness_verification_key(), gid)) {
    throw util::IntegrityError(
        "sync_from_cloud: manifest freshness token signature invalid");
  }
  if (m.freshness.gk_epoch != m.gk_epoch || m.freshness.log_head != m.log_head) {
    throw util::IntegrityError(
        "sync_from_cloud: freshness token does not bind this manifest");
  }
  // A counter BELOW the platform's confirmed floor is a rollback (or a
  // badly lagging replica — indistinguishable, and both heal by re-reading).
  // A counter ABOVE it is legitimate: a peer admin committed, or our own
  // process died between the CAS and the confirmation; syncing it below
  // raises the floor to match.
  if (m.freshness.counter < enclave_.ecall_freshness_floor(gid)) {
    ++stats_.rollback_rejections;
    throw cloud::TransientError(
        "sync_from_cloud: rolled-back manifest (freshness below enclave floor)");
  }
}

void AdminApi::publish_freshness_gossip(const GroupId& gid,
                                        const enclave::FreshnessToken& token) {
  FreshnessObservation obs;
  obs.counter = token.counter;
  obs.log_head = token.log_head;
  auto bytes = obs.to_bytes();
  try {
    with_retries([&] {
      cloud_.put(gossip_path(gid, "admin-" + config_.admin_name), bytes);
      return 0;
    });
  } catch (const cloud::TransientError&) {
    // Best-effort: the hint channel converges through the clients' own
    // observations; a missed announcement costs detection latency only.
  }
}

AdminApi::LogHead AdminApi::publish_log_entry(const GroupId& gid, LogOp op,
                                              const std::string& subject) {
  if (!config_.log_operations) return LogHead{};
  // CAS-merge: rebase our entry onto whatever head the cloud holds, so
  // concurrent administrators' entries are merged instead of overwritten
  // (the seed's last-writer-wins put lost them).
  std::optional<LogHead> attempted;
  for (int i = 0; i < max_log_publish_attempts; ++i) {
    std::optional<cloud::CloudStore::Versioned> raw;
    try {
      raw = with_retries([&] { return cloud_.get_versioned(oplog_path(gid)); });
    } catch (const cloud::TransientError&) {
      continue;
    }
    MembershipLog remote;
    std::uint64_t version = 0;
    if (raw) {
      remote = MembershipLog::from_bytes(raw->value);
      version = raw->version;
    }
    if (attempted) {
      // An earlier put_cas erred ambiguously; if our entry is already on the
      // cloud the write landed and we must not append it twice.
      for (const auto& e : remote.entries()) {
        if (e.hash == *attempted) {
          logs_[gid] = std::move(remote);
          return *attempted;
        }
      }
    }
    remote.append(op, subject, config_.admin_name, signing_key_);
    attempted = remote.entries().back().hash;
    auto bytes = remote.to_bytes();
    std::optional<std::uint64_t> result;
    try {
      result = with_retries(
          [&] { return cloud_.put_cas(oplog_path(gid), bytes, version); });
    } catch (const cloud::TransientError&) {
      continue;  // ambiguous: the next fetch resolves whether it applied
    }
    if (result) {
      logs_[gid] = std::move(remote);
      return *attempted;
    }
    ++stats_.cas_conflicts;
  }
  throw std::runtime_error("AdminApi: persistent op-log contention on " + gid);
}

bool AdminApi::verify_envelope(const SignedEnvelope& env) const {
  if (env.verify(signing_key_.public_key())) return true;
  for (const auto& key_bytes : config_.peer_verification_keys) {
    try {
      if (env.verify(ec::p256_from_bytes(key_bytes))) return true;
    } catch (const util::DeserializeError&) {
      // malformed configured key: skip
    }
  }
  return false;
}

void AdminApi::gc_group(const GroupId& gid, const GroupState& state) {
  std::vector<std::string> live;
  live.reserve(state.shards.size() + state.overlays.size() +
               config_.delta_window + 2);
  for (const auto& sh : state.shards) live.push_back(shard_path(gid, sh.sid));
  live.push_back(cipher_bundle_path(gid, state.cipher_set));
  for (const auto& [pid, oid] : state.overlays) {
    live.push_back(cipher_overlay_path(gid, oid));
  }
  live.push_back(sealed_gk_path(gid, state.gk_epoch));
  if (state.delta_base > 0) {
    for (std::uint64_t seq = state.delta_base; seq <= state.freshness.counter;
         ++seq) {
      live.push_back(delta_path(gid, seq));
    }
  }

  std::vector<std::string> files;
  try {
    files = with_retries([&] { return cloud_.list(group_dir(gid) + "/"); });
  } catch (const cloud::TransientError&) {
    return;  // best-effort; the next sweep (or recover) picks the orphans up
  }
  const std::string dir = group_dir(gid) + "/";
  for (const auto& path : files) {
    const std::string name = path.substr(dir.size());
    // parse_numbered (not a raw prefix compare) keeps "oplog" and "index"
    // out of the sweep: their non-digit tails fail the parse.
    bool sweepable = parse_numbered(name, "s", "").has_value() ||
                     parse_numbered(name, "c", "").has_value() ||
                     parse_numbered(name, "o", "").has_value() ||
                     parse_numbered(name, "d", "").has_value() ||
                     parse_numbered(name, "gk", ".sealed").has_value();
    if (!sweepable) continue;
    if (std::find(live.begin(), live.end(), path) != live.end()) continue;
    try {
      with_retries([&] {
        cloud_.erase(path);
        return 0;
      });
    } catch (const cloud::TransientError&) {
      // leave the orphan for the next sweep
    }
  }
}

void AdminApi::bump_counters_past(GroupState& state) const {
  auto bump = [&](std::uint64_t id, std::uint32_t& counter) {
    if (static_cast<std::uint32_t>(id >> 32) != config_.admin_nonce) return;
    auto low = static_cast<std::uint32_t>(id);
    if (low >= counter) counter = low + 1;
  };
  for (const auto& p : state.partitions) bump(p.id, state.partition_counter);
  for (const auto& sh : state.shards) bump(sh.sid, state.object_counter);
  bump(state.cipher_set, state.object_counter);
  for (const auto& [pid, oid] : state.overlays) bump(oid, state.object_counter);
  bump(state.gk_epoch, state.epoch_counter);
}

void AdminApi::sync_from_cloud(const GroupId& gid) {
  auto raw_index =
      with_retries([&] { return cloud_.get_versioned(index_path(gid)); });
  if (!raw_index) {
    throw std::runtime_error("sync_from_cloud: no index for group " + gid);
  }
  auto index_env = SignedEnvelope::from_bytes(raw_index->value);
  if (!verify_envelope(index_env)) {
    throw std::runtime_error("sync_from_cloud: index signature not trusted");
  }
  GroupManifest manifest = GroupManifest::from_bytes(index_env.payload);
  // The enclave-anchored freshness token subsumes the old version-
  // monotonicity heuristic: unlike the cloud-assigned version it is SIGNED,
  // survives an admin restart, and tells a Byzantine rollback apart from
  // benign replica lag (both heal by re-reading; only one is counted).
  check_index_freshness(gid, manifest);
  auto old = cache_.find(gid);

  GroupState state;
  state.index_version = raw_index->version;
  state.gk_epoch = manifest.gk_epoch;
  state.freshness = manifest.freshness;
  state.cipher_set = manifest.cipher_set;
  state.overlays = manifest.overlays;
  state.delta_base = manifest.delta_base;

  for (const auto& ref : manifest.shards) {
    auto raw = with_retries([&] { return cloud_.get(shard_path(gid, ref.sid)); });
    if (!raw) {
      // Committed manifests only reference shards that were pushed before
      // the commit, so absence means we read a torn/stale view.
      throw cloud::TransientError("sync_from_cloud: shard not yet visible");
    }
    if (content_hash(*raw) != ref.hash) {
      // A replica serving old bytes under a live name (or a torn write):
      // the manifest pins content, so this heals by re-reading.
      throw cloud::TransientError("sync_from_cloud: stale shard content");
    }
    auto env = SignedEnvelope::from_bytes(*raw);
    if (!verify_envelope(env)) {
      throw std::runtime_error("sync_from_cloud: shard signature not trusted");
    }
    IndexShard rec = IndexShard::from_bytes(env.payload);
    Shard sh;
    sh.sid = ref.sid;
    sh.hash = ref.hash;
    for (auto& [pid, members] : rec.partitions) {
      sh.pids.push_back(pid);
      Partition p;
      p.id = pid;
      p.members = std::move(members);
      state.partitions.push_back(std::move(p));
    }
    state.shards.push_back(std::move(sh));
  }

  auto raw_bundle = with_retries(
      [&] { return cloud_.get(cipher_bundle_path(gid, manifest.cipher_set)); });
  if (!raw_bundle) {
    throw cloud::TransientError("sync_from_cloud: cipher bundle not yet visible");
  }
  auto bundle_env = SignedEnvelope::from_bytes(*raw_bundle);
  if (!verify_envelope(bundle_env)) {
    throw std::runtime_error("sync_from_cloud: bundle signature not trusted");
  }
  CipherBundle bundle = CipherBundle::from_bytes(bundle_env.payload);

  std::map<PartitionId, enclave::PartitionCiphertext> overlay_ciphers;
  for (const auto& [pid, oid] : manifest.overlays) {
    auto raw =
        with_retries([&] { return cloud_.get(cipher_overlay_path(gid, oid)); });
    if (!raw) {
      throw cloud::TransientError("sync_from_cloud: overlay not yet visible");
    }
    auto env = SignedEnvelope::from_bytes(*raw);
    if (!verify_envelope(env)) {
      throw std::runtime_error("sync_from_cloud: overlay signature not trusted");
    }
    CipherOverlay overlay = CipherOverlay::from_bytes(env.payload);
    overlay_ciphers[pid] = std::move(overlay.cipher);
  }
  for (auto& p : state.partitions) {
    if (auto it = overlay_ciphers.find(p.id); it != overlay_ciphers.end()) {
      p.cipher = std::move(it->second);
    } else if (const auto* c = bundle.find(p.id)) {
      p.cipher = *c;
    } else {
      throw cloud::TransientError("sync_from_cloud: partition cipher missing");
    }
  }
  state.member_of.reserve(state.partitions.size());
  for (const auto& p : state.partitions) {
    for (const auto& m : p.members) state.member_of.emplace(m, p.id);
  }

  auto sealed = with_retries(
      [&] { return cloud_.get(sealed_gk_path(gid, manifest.gk_epoch)); });
  if (sealed) {
    state.sealed_gk = sgx::SealedBlob::from_bytes(*sealed);
  } else if (old != cache_.end() && old->second.gk_epoch == manifest.gk_epoch) {
    state.sealed_gk = old->second.sealed_gk;  // we sealed this epoch ourselves
  } else {
    throw cloud::TransientError("sync_from_cloud: sealed gk not yet visible");
  }

  // Admin-local fields survive the re-sync.
  if (old != cache_.end()) {
    state.partition_counter = old->second.partition_counter;
    state.epoch_counter = old->second.epoch_counter;
    state.object_counter = old->second.object_counter;
    state.target_partition_size = old->second.target_partition_size;
    state.shard_partition_target = old->second.shard_partition_target;
  } else {
    state.target_partition_size = config_.partition_size;
    state.shard_partition_target =
        config_.shard_partitions
            ? config_.shard_partitions
            : PartitionAdvisor::recommend_shard_partitions(
                  std::max<std::size_t>(state.partitions.size(), 1),
                  state.target_partition_size);
  }
  bump_counters_past(state);
  // Late confirmation: if our previous incarnation died between the manifest
  // CAS and its confirmation (or a peer committed on another platform), the
  // platform floor now catches up with the committed counter.
  enclave_.ecall_confirm_freshness(gid, manifest.freshness.counter);
  cache_[gid] = std::move(state);
}

bool AdminApi::recover(const GroupId& gid) {
  ++stats_.recoveries;
  auto raw_index =
      with_retries([&] { return cloud_.get_versioned(index_path(gid)); });
  if (!raw_index) {
    // No commit point ever landed: a creation died mid-flight. Roll it back
    // by deleting every torn file under the group's directory.
    std::vector<std::string> files;
    try {
      files = with_retries([&] { return cloud_.list(group_dir(gid) + "/"); });
    } catch (const cloud::TransientError&) {
      files.clear();
    }
    for (const auto& path : files) {
      try {
        with_retries([&] {
          cloud_.erase(path);
          return 0;
        });
      } catch (const cloud::TransientError&) {
        // leave it; a later recover retries
      }
    }
    cache_.erase(gid);
    logs_.erase(gid);
    return false;
  }

  // The manifest committed: adopt that state (rolling an uncommitted
  // mutation back), then finish the sweep a committed mutation may have left
  // undone (roll-forward of its GC).
  with_retries([&] {
    sync_from_cloud(gid);
    return 0;
  });
  GroupState& state = state_of(gid);

  // Advance our id/epoch counters past every leftover on the cloud, not just
  // what the manifest references: if the GC below fails half-way, a reused
  // id could otherwise collide with a stale orphan file. Deltas are absent
  // from this scan on purpose — their names carry the GLOBAL freshness
  // counter, not an admin-spaced id, so there is no local counter to bump.
  std::vector<std::string> files;
  try {
    files = with_retries([&] { return cloud_.list(group_dir(gid) + "/"); });
  } catch (const cloud::TransientError&) {
    files.clear();
  }
  const std::string dir = group_dir(gid) + "/";
  for (const auto& path : files) {
    const std::string name = path.substr(dir.size());
    bool is_epoch = false;
    std::optional<std::uint64_t> id = parse_numbered(name, "s", "");
    if (!id) id = parse_numbered(name, "c", "");
    if (!id) id = parse_numbered(name, "o", "");
    if (!id) {
      id = parse_numbered(name, "gk", ".sealed");
      is_epoch = id.has_value();
    }
    if (!id) continue;
    if (static_cast<std::uint32_t>(*id >> 32) != config_.admin_nonce) continue;
    auto low = static_cast<std::uint32_t>(*id);
    auto& counter = is_epoch ? state.epoch_counter : state.object_counter;
    if (low >= counter) counter = low + 1;
  }

  gc_group(gid, state);

  // Re-announce the committed freshness: a crash between the CAS and the
  // gossip put would otherwise leave the hint channel a commit behind.
  publish_freshness_gossip(gid, state.freshness);

  if (config_.log_operations) {
    try {
      auto raw = with_retries([&] { return cloud_.get(oplog_path(gid)); });
      if (raw) logs_[gid] = MembershipLog::from_bytes(*raw);
    } catch (const cloud::TransientError&) {
      // cache refresh only; the next publish re-fetches anyway
    }
  }
  return true;
}

template <typename Op>
AdminApi::OpOutcome AdminApi::mutate_with_retry(const GroupId& gid, LogOp logop,
                                                const std::string& subject,
                                                Op&& op) {
  std::optional<LogHead> staged;
  for (int attempt = 0;; ++attempt) {
    GroupState& state = state_of(gid);
    // A re-run after a CAS conflict restages its delta ops from scratch.
    state.pending_delta.clear();
    OpOutcome outcome = op(state, staged);
    if (outcome == OpOutcome::rebuilt) return outcome;
    if (outcome == OpOutcome::noop) {
      // Nothing to publish, but an earlier conflicted attempt (or a crashed
      // predecessor) may have left shadow files behind: sweep them.
      gc_group(gid, state);
      return outcome;
    }
    if (!staged) staged = publish_log_entry(gid, logop, subject);
    if (push_index(gid, state, *staged)) {
      gc_group(gid, state);
      return outcome;
    }
    if (attempt >= max_cas_retries) {
      throw std::runtime_error("AdminApi: persistent CAS conflicts on group " +
                               gid);
    }
    with_retries([&] {
      sync_from_cloud(gid);
      return 0;
    });
  }
}

const MembershipLog& AdminApi::log_of(const GroupId& gid) const {
  static const MembershipLog empty;
  auto it = logs_.find(gid);
  return it == logs_.end() ? empty : it->second;
}

MembershipLog::AuditResult AdminApi::audit_group_log(const GroupId& gid) const {
  // stats_ is not updated here (const audit path): use the bare retry helper.
  auto fetch = [&](const std::string& path) {
    return util::retry_faults(config_.retry, [&] { return cloud_.get(path); });
  };
  auto raw = fetch(oplog_path(gid));
  if (!raw) return {false, "no op-log stored for group", 0};
  MembershipLog log;
  try {
    log = MembershipLog::from_bytes(*raw);
  } catch (const util::DeserializeError&) {
    return {false, "op-log blob corrupted", 0};
  }

  std::vector<ec::P256Point> keys;
  keys.push_back(signing_key_.public_key());
  for (const auto& key_bytes : config_.peer_verification_keys) {
    try {
      keys.push_back(ec::p256_from_bytes(key_bytes));
    } catch (const util::DeserializeError&) {
      // malformed configured key: skip
    }
  }

  // Anchor on the committed manifest's log head so a rolled-back suffix — a
  // perfectly valid shorter chain — is still caught; check the manifest's
  // freshness token against the enclave floor so a WHOLESALE rollback of a
  // consistent old manifest+log pair (which the anchor alone cannot see) is
  // caught too.
  LogHead anchor{};
  const LogHead* anchor_ptr = nullptr;
  if (auto raw_index = fetch(index_path(gid))) {
    try {
      auto env = SignedEnvelope::from_bytes(*raw_index);
      if (verify_envelope(env)) {
        GroupManifest m = GroupManifest::from_bytes(env.payload);
        if (!m.freshness.verify(enclave_.freshness_verification_key(), gid) ||
            m.freshness.gk_epoch != m.gk_epoch ||
            m.freshness.log_head != m.log_head) {
          return {false, "manifest freshness attestation invalid", 0};
        }
        if (m.freshness.counter < enclave_.ecall_freshness_floor(gid)) {
          return {false,
                  "rolled-back manifest+log pair (freshness below enclave floor)",
                  0};
        }
        anchor = m.log_head;
        anchor_ptr = &anchor;
      }
    } catch (const util::DeserializeError&) {
      // unanchored audit is still better than no audit
    }
  }
  return log.audit(keys, anchor_ptr);
}

void AdminApi::create_group(const GroupId& gid,
                            std::span<const Identity> members) {
  create_group_sized(gid, members, config_.partition_size, LogOp::create_group,
                     "members=" + std::to_string(members.size()));
}

void AdminApi::create_group_sized(const GroupId& gid,
                                  std::span<const Identity> members,
                                  std::size_t partition_size, LogOp logop,
                                  const std::string& subject) {
  if (members.empty()) {
    throw std::invalid_argument("create_group: need at least one member");
  }
  GroupState state;
  state.target_partition_size = partition_size;
  if (auto it = cache_.find(gid); it != cache_.end()) {
    // Recreation (e.g. re-partitioning) keeps counters and CAS lineage.
    state.partition_counter = it->second.partition_counter;
    state.epoch_counter = it->second.epoch_counter;
    state.object_counter = it->second.object_counter;
    state.index_version = it->second.index_version;
    state.freshness = it->second.freshness;  // floor for the next attestation
  }

  // Algorithm 1, line 1: fixed-size partitions.
  std::vector<std::vector<Identity>> partitions;
  for (std::size_t i = 0; i < members.size(); i += partition_size) {
    auto last = std::min(members.size(), i + partition_size);
    partitions.emplace_back(members.begin() + static_cast<std::ptrdiff_t>(i),
                            members.begin() + static_cast<std::ptrdiff_t>(last));
  }

  // Lines 2-6 run inside the enclave.
  auto creation = enclave_.ecall_create_group(partitions);

  // Line 7: persist everything — shards, cipher bundle, sealed gk, log entry
  // — all under fresh names, all BEFORE the manifest CAS commits them.
  state.sealed_gk = creation.sealed_gk;
  state.gk_epoch = fresh_gk_epoch(state);
  state.shard_partition_target =
      config_.shard_partitions
          ? config_.shard_partitions
          : PartitionAdvisor::recommend_shard_partitions(partitions.size(),
                                                         partition_size);
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    Partition rec;
    rec.id = fresh_partition_id(state);
    rec.members = std::move(partitions[p]);
    rec.cipher = std::move(creation.partitions[p]);
    for (const auto& m : rec.members) state.member_of.emplace(m, rec.id);
    assign_to_shard(state, rec.id);
    state.partitions.push_back(std::move(rec));
  }
  for (std::size_t s = 0; s < state.shards.size(); ++s) {
    rewrite_shard(gid, state, s);
  }
  write_bundle(gid, state);
  push_sealed_gk(gid, state);
  LogHead head = publish_log_entry(gid, logop, subject);
  // pending_delta is empty: the creation commits as a snapshot barrier.
  if (!push_index(gid, state, head)) {
    throw std::runtime_error("create_group: concurrent modification of " + gid);
  }

  stats_.groups_created++;
  stats_.partitions_created += state.partitions.size();
  GroupState& committed = (cache_[gid] = std::move(state));
  // Post-commit: sweep the previous generation's files (re-partitioning) and
  // any shadow leftovers.
  gc_group(gid, committed);
}

void AdminApi::add_user(const GroupId& gid, const Identity& id) {
  bool created_partition = false;
  auto outcome = mutate_with_retry(
      gid, LogOp::add_user, id,
      [&](GroupState& state, std::optional<LogHead>&) {
        created_partition = false;
        if (state.member_of.count(id)) return OpOutcome::noop;

        // Algorithm 2, line 1: partitions with spare capacity.
        std::vector<std::size_t> open;
        for (std::size_t p = 0; p < state.partitions.size(); ++p) {
          if (state.partitions[p].members.size() < state.target_partition_size) {
            open.push_back(p);
          }
        }

        PartitionId pid;
        std::size_t shard;
        if (open.empty()) {
          // Lines 3-7: new partition wrapping the existing gk.
          Partition rec;
          rec.id = fresh_partition_id(state);
          rec.members = {id};
          rec.cipher =
              enclave_.ecall_create_partition(rec.members, state.sealed_gk);
          pid = rec.id;
          shard = assign_to_shard(state, pid);
          state.partitions.push_back(std::move(rec));
          created_partition = true;
        } else {
          // Lines 9-12: random open partition; O(1) ciphertext extension; the
          // wrapped key y_p is untouched. The partition keeps its stable id —
          // immutability lives in the shard/overlay objects rewritten below.
          auto& rec = state.partitions[open[rng_.uniform(open.size())]];
          rec.cipher.ct = enclave_.ecall_add_user_to_partition(rec.cipher.ct, id);
          rec.members.push_back(id);
          pid = rec.id;
          shard = shard_index_of(state, pid);
        }
        state.member_of.emplace(id, pid);

        // O(1) objects regardless of group size: one overlay, one shard, the
        // delta + op-log entry + manifest that push_index publishes.
        write_overlay(gid, state, pid);
        rewrite_shard(gid, state, shard);
        DeltaOp op;
        op.kind = DeltaOp::Kind::add_member;
        op.user = id;
        op.pid = pid;
        state.pending_delta.push_back(std::move(op));
        return OpOutcome::published;
      });

  if (outcome == OpOutcome::noop) return;
  stats_.users_added++;
  if (created_partition) stats_.partitions_created++;
  advisor_.record_add();
}

void AdminApi::remove_user(const GroupId& gid, const Identity& id) {
  auto outcome = mutate_with_retry(
      gid, LogOp::remove_user, id,
      [&](GroupState& state, std::optional<LogHead>& staged) {
        // Locate the hosting partition (Algorithm 3, line 1) — O(1) now.
        auto mit = state.member_of.find(id);
        if (mit == state.member_of.end()) return OpOutcome::noop;
        const PartitionId host_pid = mit->second;
        std::size_t host = partition_index(state, host_pid);

        // Lines 3-9 run inside the enclave: O(1) removal on the host,
        // constant time re-key everywhere else, fresh gk wrapped under every
        // partition.
        std::vector<core::BroadcastCiphertext> others;
        others.reserve(state.partitions.size() - 1);
        for (std::size_t p = 0; p < state.partitions.size(); ++p) {
          if (p != host) others.push_back(state.partitions[p].cipher.ct);
        }
        auto result = enclave_.ecall_remove_user(state.partitions[host].cipher.ct,
                                                 others, id);
        state.sealed_gk = result.sealed_gk;
        state.gk_epoch = fresh_gk_epoch(state);

        // Apply results: index 0 is the host, the rest follow input order.
        auto& host_rec = state.partitions[host];
        host_rec.members.erase(
            std::find(host_rec.members.begin(), host_rec.members.end(), id));
        host_rec.cipher = std::move(result.partitions[0]);
        std::size_t out = 1;
        for (std::size_t p = 0; p < state.partitions.size(); ++p) {
          if (p != host) {
            state.partitions[p].cipher = std::move(result.partitions[out++]);
          }
        }
        state.member_of.erase(mit);
        DeltaOp op;
        op.kind = DeltaOp::Kind::remove_member;
        op.user = id;
        op.pid = host_pid;
        state.pending_delta.push_back(std::move(op));

        // An emptied partition just leaves the index; its shard entry goes
        // with it (and an emptied shard drops out of the manifest — the old
        // file is swept by the post-commit GC).
        std::size_t host_shard = shard_index_of(state, host_pid);
        bool host_shard_alive = true;
        if (host_rec.members.empty()) {
          state.partitions.erase(state.partitions.begin() +
                                 static_cast<std::ptrdiff_t>(host));
          auto& pids = state.shards[host_shard].pids;
          pids.erase(std::find(pids.begin(), pids.end(), host_pid));
          if (pids.empty()) {
            state.shards.erase(state.shards.begin() +
                               static_cast<std::ptrdiff_t>(host_shard));
            host_shard_alive = false;
          }
        }

        // The global §V-A heuristic first (a full rebuild subsumes any
        // shard-local one), then the same rule scoped to the host shard.
        if (!state.partitions.empty() && config_.repartitioning &&
            should_repartition(state)) {
          // The rebuild commits on its own; our log entry must precede its
          // repartition entry on the cloud.
          if (!staged) staged = publish_log_entry(gid, LogOp::remove_user, id);
          rebuild_group(gid, state);
          return OpOutcome::rebuilt;
        }
        if (host_shard_alive && config_.repartitioning &&
            shard_should_repartition(state, state.shards[host_shard])) {
          repartition_shard(state, host_shard);
        }
        if (host_shard_alive) rewrite_shard(gid, state, host_shard);
        // Every partition's ciphertext changed, but they travel as ONE
        // rotated bundle: the revocation stays O(1) uploaded objects.
        write_bundle(gid, state);
        push_sealed_gk(gid, state);
        return OpOutcome::published;
      });

  if (outcome == OpOutcome::noop) return;
  stats_.users_removed++;
  advisor_.record_remove();
}

void AdminApi::add_users(const GroupId& gid, std::span<const Identity> ids) {
  for (const auto& id : ids) add_user(gid, id);
}

void AdminApi::remove_users(const GroupId& gid, std::span<const Identity> ids) {
  std::size_t removed_count = 0;
  // The lambda rewrites this before mutate_with_retry publishes the entry.
  std::string subject = "batch=0";
  auto outcome = mutate_with_retry(
      gid, LogOp::remove_user, subject,
      [&](GroupState& state, std::optional<LogHead>& staged) {
        removed_count = 0;
        // Group the batch by hosting partition; silently skip non-members.
        std::map<std::size_t, std::vector<Identity>> by_partition;
        for (const auto& id : ids) {
          auto mit = state.member_of.find(id);
          if (mit == state.member_of.end()) continue;
          by_partition[partition_index(state, mit->second)].push_back(id);
        }
        if (by_partition.empty()) return OpOutcome::noop;

        std::vector<enclave::IbbeEnclave::BatchRemovalSpec> hosts;
        std::vector<std::size_t> host_indices;
        std::vector<core::BroadcastCiphertext> others;
        std::vector<std::size_t> other_indices;
        for (std::size_t p = 0; p < state.partitions.size(); ++p) {
          auto it = by_partition.find(p);
          if (it != by_partition.end()) {
            hosts.push_back({state.partitions[p].cipher.ct, it->second});
            host_indices.push_back(p);
          } else {
            others.push_back(state.partitions[p].cipher.ct);
            other_indices.push_back(p);
          }
        }

        auto result = enclave_.ecall_remove_users(hosts, others);
        state.sealed_gk = result.sealed_gk;
        state.gk_epoch = fresh_gk_epoch(state);

        // Track which shards lose members; sids are stable until the final
        // rewrite, so they key the dirty set safely across erasures below.
        std::vector<std::uint64_t> dirty_sids;
        auto mark_dirty = [&](PartitionId pid) {
          auto sid = state.shards[shard_index_of(state, pid)].sid;
          if (std::find(dirty_sids.begin(), dirty_sids.end(), sid) ==
              dirty_sids.end()) {
            dirty_sids.push_back(sid);
          }
        };

        // Enclave output order: hosts first, then the others.
        for (std::size_t h = 0; h < host_indices.size(); ++h) {
          auto& rec = state.partitions[host_indices[h]];
          rec.cipher = std::move(result.partitions[h]);
          mark_dirty(rec.id);
          for (const auto& id : by_partition[host_indices[h]]) {
            rec.members.erase(
                std::find(rec.members.begin(), rec.members.end(), id));
            state.member_of.erase(id);
            DeltaOp op;
            op.kind = DeltaOp::Kind::remove_member;
            op.user = id;
            op.pid = rec.id;
            state.pending_delta.push_back(std::move(op));
          }
          removed_count += by_partition[host_indices[h]].size();
        }
        for (std::size_t o = 0; o < other_indices.size(); ++o) {
          state.partitions[other_indices[o]].cipher =
              std::move(result.partitions[hosts.size() + o]);
        }

        // Drop emptied partitions, largest offset first; the shard files
        // themselves are swept post-commit.
        for (std::size_t p = state.partitions.size(); p-- > 0;) {
          if (!state.partitions[p].members.empty()) continue;
          const PartitionId pid = state.partitions[p].id;
          std::size_t s = shard_index_of(state, pid);
          auto& pids = state.shards[s].pids;
          pids.erase(std::find(pids.begin(), pids.end(), pid));
          if (pids.empty()) {
            auto sid = state.shards[s].sid;
            dirty_sids.erase(
                std::remove(dirty_sids.begin(), dirty_sids.end(), sid),
                dirty_sids.end());
            state.shards.erase(state.shards.begin() +
                               static_cast<std::ptrdiff_t>(s));
          }
          state.partitions.erase(state.partitions.begin() +
                                 static_cast<std::ptrdiff_t>(p));
        }

        subject = "batch=" + std::to_string(removed_count);
        if (!state.partitions.empty() && config_.repartitioning &&
            should_repartition(state)) {
          if (!staged) {
            staged = publish_log_entry(gid, LogOp::remove_user, subject);
          }
          rebuild_group(gid, state);
          return OpOutcome::rebuilt;
        }
        for (std::size_t s = 0; s < state.shards.size(); ++s) {
          if (std::find(dirty_sids.begin(), dirty_sids.end(),
                        state.shards[s].sid) == dirty_sids.end()) {
            continue;
          }
          if (config_.repartitioning &&
              shard_should_repartition(state, state.shards[s])) {
            repartition_shard(state, s);
          }
          rewrite_shard(gid, state, s);
        }
        write_bundle(gid, state);
        push_sealed_gk(gid, state);
        return OpOutcome::published;
      });

  if (outcome == OpOutcome::noop) return;
  stats_.users_removed += removed_count;
  for (std::size_t i = 0; i < removed_count; ++i) advisor_.record_remove();
}

bool AdminApi::should_repartition(const GroupState& state) const {
  // §V-A heuristic: "if less than half of the partitions are only two thirds
  // full, then re-partitioning is triggered."
  if (state.partitions.size() < 2) return false;
  std::size_t threshold = (state.target_partition_size * 2 + 2) / 3;  // ceil(2m/3)
  std::size_t sparse = 0;
  for (const auto& rec : state.partitions) {
    if (rec.members.size() < threshold) ++sparse;
  }
  return sparse * 2 > state.partitions.size();
}

bool AdminApi::shard_should_repartition(const GroupState& state,
                                        const Shard& shard) const {
  // The §V-A occupancy rule scoped to one shard: compacting only the shard
  // that churned keeps the repair O(shard), and clients fold it as a delta
  // instead of hitting the full-rebuild snapshot barrier.
  if (shard.pids.size() < 2) return false;
  std::size_t threshold = (state.target_partition_size * 2 + 2) / 3;
  std::size_t sparse = 0;
  for (PartitionId pid : shard.pids) {
    if (state.partitions[partition_index(state, pid)].members.size() < threshold) {
      ++sparse;
    }
  }
  return sparse * 2 > shard.pids.size();
}

void AdminApi::repartition_shard(GroupState& state, std::size_t shard) {
  Shard& sh = state.shards[shard];
  DeltaOp op;
  op.kind = DeltaOp::Kind::repartition;
  op.dropped = sh.pids;

  std::vector<Identity> pool;
  for (PartitionId pid : sh.pids) {
    auto idx = partition_index(state, pid);
    auto& members = state.partitions[idx].members;
    pool.insert(pool.end(), members.begin(), members.end());
    state.partitions.erase(state.partitions.begin() +
                           static_cast<std::ptrdiff_t>(idx));
  }
  sh.pids.clear();

  const std::size_t m = std::max<std::size_t>(state.target_partition_size, 1);
  for (std::size_t i = 0; i < pool.size(); i += m) {
    auto last = std::min(pool.size(), i + m);
    Partition rec;
    rec.id = fresh_partition_id(state);
    rec.members.assign(pool.begin() + static_cast<std::ptrdiff_t>(i),
                       pool.begin() + static_cast<std::ptrdiff_t>(last));
    // Wraps the CURRENT (post-rotation) gk — the caller writes the bundle
    // after this, so the new ciphertexts ride the same O(1) object.
    rec.cipher = enclave_.ecall_create_partition(rec.members, state.sealed_gk);
    for (const auto& u : rec.members) state.member_of[u] = rec.id;
    sh.pids.push_back(rec.id);
    op.created.emplace_back(rec.id, rec.members);
    state.partitions.push_back(std::move(rec));
    stats_.partitions_created++;
  }
  stats_.shard_repartitions++;
  state.pending_delta.push_back(std::move(op));
}

void AdminApi::rebuild_group(const GroupId& gid, GroupState& state) {
  std::vector<Identity> all;
  for (const auto& rec : state.partitions) {
    all.insert(all.end(), rec.members.begin(), rec.members.end());
  }
  stats_.repartitions++;

  std::size_t new_size = state.target_partition_size;
  if (config_.adaptive_partitioning) {
    new_size = advisor_.recommend(all.size(), config_.min_partition_size,
                                  enclave_.public_key().max_receivers());
    advisor_.reset_window();
  }

  // create_group_sized rewrites cache_[gid] (committing via the manifest CAS
  // and sweeping this generation's files afterwards); adjust counters to not
  // double-count the group itself.
  stats_.groups_created--;
  create_group_sized(gid, all, new_size, LogOp::repartition,
                     "partition_size=" + std::to_string(new_size));
}

bool AdminApi::is_member(const GroupId& gid, const Identity& id) const {
  auto it = cache_.find(gid);
  if (it == cache_.end()) return false;
  return it->second.member_of.count(id) != 0;
}

std::size_t AdminApi::group_size(const GroupId& gid) const {
  return state_of(gid).member_of.size();
}

std::size_t AdminApi::partition_count(const GroupId& gid) const {
  return state_of(gid).partitions.size();
}

std::size_t AdminApi::shard_count(const GroupId& gid) const {
  return state_of(gid).shards.size();
}

std::size_t AdminApi::partition_size_target(const GroupId& gid) const {
  return state_of(gid).target_partition_size;
}

std::size_t AdminApi::cloud_object_count(const GroupId& gid) const {
  const GroupState& state = state_of(gid);
  std::size_t n = 2;  // manifest + sealed gk
  n += state.shards.size();
  n += 1;  // cipher bundle
  n += state.overlays.size();
  if (state.delta_base > 0 && state.freshness.counter >= state.delta_base) {
    n += state.freshness.counter - state.delta_base + 1;
  }
  if (config_.log_operations) n += 1;
  return n;
}

std::size_t AdminApi::metadata_size(const GroupId& gid) const {
  const GroupState& state = state_of(gid);
  // Stored envelope bytes = 4-byte payload prefix + payload + signature.
  constexpr std::size_t env_overhead =
      4 + pki::EcdsaSignature::serialized_size;
  std::size_t total = 0;
  for (const auto& sh : state.shards) {
    IndexShard rec;
    rec.sid = sh.sid;
    for (PartitionId pid : sh.pids) {
      rec.partitions.emplace_back(
          pid, state.partitions[partition_index(state, pid)].members);
    }
    total += rec.to_bytes().size() + env_overhead;
  }
  CipherBundle bundle;
  for (const auto& p : state.partitions) {
    bundle.entries.emplace_back(p.id, p.cipher);
  }
  total += bundle.to_bytes().size() + env_overhead;
  for (const auto& [pid, oid] : state.overlays) {
    CipherOverlay overlay;
    overlay.pid = pid;
    overlay.cipher = state.partitions[partition_index(state, pid)].cipher;
    total += overlay.to_bytes().size() + env_overhead;
  }
  total += build_manifest(state).to_bytes().size() + env_overhead;
  total += state.sealed_gk.to_bytes().size();  // gk<epoch>.sealed
  // Retained deltas are not mirrored in memory; size the live window off the
  // cloud (const path: bare retry helper, stats untouched).
  if (state.delta_base > 0) {
    for (std::uint64_t seq = state.delta_base; seq <= state.freshness.counter;
         ++seq) {
      auto raw = util::retry_faults(
          config_.retry, [&] { return cloud_.get(delta_path(gid, seq)); });
      if (raw) total += raw->size();
    }
  }
  return total;
}

}  // namespace ibbe::system
