// ECDSA over NIST P-256 with SHA-256 digests.
//
// Used by three parties in the system model: the simulated Quoting Enclave
// (signing SGX quotes), the Auditor/CA (signing enclave certificates), and
// administrators (authenticating membership-change uploads, per the paper's
// authenticity requirement on administrator identities).
//
// Nonces follow the RFC 6979 idea (derived deterministically from the secret
// key and message via HMAC), so signing needs no ambient randomness.
#pragma once

#include <optional>
#include <span>
#include <string_view>

#include "crypto/drbg.h"
#include "ec/curves.h"
#include "field/fields.h"
#include "util/bytes.h"

namespace ibbe::pki {

struct EcdsaSignature {
  field::P256Fr r;
  field::P256Fr s;

  [[nodiscard]] util::Bytes to_bytes() const;  // 64 bytes, r || s
  static EcdsaSignature from_bytes(std::span<const std::uint8_t> data);
  static constexpr std::size_t serialized_size = 64;
};

class EcdsaKeyPair {
 public:
  /// Fresh key from the given randomness source.
  static EcdsaKeyPair generate(crypto::Drbg& rng);
  /// Deterministic key from a 32-byte secret (used by the enclave, whose key
  /// material must be derivable from sealed state).
  static EcdsaKeyPair from_secret(std::span<const std::uint8_t> secret32);

  [[nodiscard]] const ec::P256Point& public_key() const { return pub_; }
  [[nodiscard]] util::Bytes public_key_bytes() const {
    return ec::p256_to_bytes(pub_);
  }

  [[nodiscard]] EcdsaSignature sign(std::span<const std::uint8_t> message) const;
  [[nodiscard]] EcdsaSignature sign(std::string_view message) const;

 private:
  EcdsaKeyPair(field::P256Fr secret, ec::P256Point pub)
      : secret_(secret), pub_(pub) {}

  field::P256Fr secret_;
  ec::P256Point pub_;
};

/// Signature verification against a public key point.
[[nodiscard]] bool ecdsa_verify(const ec::P256Point& public_key,
                                std::span<const std::uint8_t> message,
                                const EcdsaSignature& sig);
[[nodiscard]] bool ecdsa_verify(const ec::P256Point& public_key,
                                std::string_view message,
                                const EcdsaSignature& sig);

}  // namespace ibbe::pki
