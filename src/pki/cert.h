// Minimal certificates and a certificate authority.
//
// Models the Auditor/CA of the paper's Fig. 3: after attesting an enclave it
// issues a certificate binding the enclave's public key to its measurement,
// which users verify before accepting provisioned IBBE user keys.
#pragma once

#include <optional>
#include <string>

#include "pki/ecdsa.h"
#include "util/bytes.h"

namespace ibbe::pki {

struct Certificate {
  std::string subject;            // e.g. "enclave:ibbe-sgx"
  util::Bytes public_key;         // compressed P-256 point (33 bytes)
  util::Bytes measurement;        // enclave MRENCLAVE (32 bytes; empty for users)
  std::string issuer;
  EcdsaSignature signature;       // over the fields above

  [[nodiscard]] util::Bytes to_bytes() const;
  static Certificate from_bytes(std::span<const std::uint8_t> data);

  /// The byte string covered by the signature.
  [[nodiscard]] util::Bytes signed_payload() const;
};

class CertificateAuthority {
 public:
  CertificateAuthority(std::string name, crypto::Drbg& rng)
      : name_(std::move(name)), key_(EcdsaKeyPair::generate(rng)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const ec::P256Point& public_key() const {
    return key_.public_key();
  }

  [[nodiscard]] Certificate issue(std::string subject, util::Bytes public_key,
                                  util::Bytes measurement) const;

  /// Verifies a certificate against this CA's public key.
  [[nodiscard]] static bool verify(const Certificate& cert,
                                   const ec::P256Point& ca_key);

 private:
  std::string name_;
  EcdsaKeyPair key_;
};

}  // namespace ibbe::pki
