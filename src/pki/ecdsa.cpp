#include "pki/ecdsa.h"

#include <array>
#include <stdexcept>

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "ec/msm.h"

namespace ibbe::pki {

using ec::P256Point;
using field::P256Fr;

namespace {

P256Fr hash_to_scalar(std::span<const std::uint8_t> message) {
  auto digest = crypto::Sha256::hash(message);
  return P256Fr::from_be_bytes_reduce(digest);
}

std::span<const std::uint8_t> sv_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

}  // namespace

util::Bytes EcdsaSignature::to_bytes() const {
  util::ByteWriter w;
  w.raw(r.to_be_bytes());
  w.raw(s.to_be_bytes());
  return w.take();
}

EcdsaSignature EcdsaSignature::from_bytes(std::span<const std::uint8_t> data) {
  if (data.size() != serialized_size) {
    throw util::DeserializeError("EcdsaSignature: need 64 bytes");
  }
  EcdsaSignature sig;
  sig.r = P256Fr::from_u256(bigint::U256::from_be_bytes(data.first(32)));
  sig.s = P256Fr::from_u256(bigint::U256::from_be_bytes(data.subspan(32)));
  return sig;
}

EcdsaKeyPair EcdsaKeyPair::generate(crypto::Drbg& rng) {
  while (true) {
    auto raw = rng.bytes(32);
    P256Fr secret = P256Fr::from_be_bytes_reduce(raw);
    if (!secret.is_zero()) {
      return {secret, P256Point::generator().mul(secret)};
    }
  }
}

EcdsaKeyPair EcdsaKeyPair::from_secret(std::span<const std::uint8_t> secret32) {
  P256Fr secret = P256Fr::from_be_bytes_reduce(secret32);
  if (secret.is_zero()) {
    throw std::invalid_argument("EcdsaKeyPair: secret reduces to zero");
  }
  return {secret, P256Point::generator().mul(secret)};
}

EcdsaSignature EcdsaKeyPair::sign(std::span<const std::uint8_t> message) const {
  P256Fr z = hash_to_scalar(message);
  // Deterministic nonce (RFC 6979 flavour): k = HMAC(sk_bytes, digest || ctr),
  // re-derived with an incremented counter in the (cryptographically
  // negligible) retry cases.
  auto digest = crypto::Sha256::hash(message);
  auto sk_bytes = secret_.to_be_bytes();
  for (std::uint8_t counter = 0;; ++counter) {
    util::Bytes input(digest.begin(), digest.end());
    input.push_back(counter);
    auto k_raw = crypto::hmac_sha256(sk_bytes, input);
    P256Fr k = P256Fr::from_be_bytes_reduce(k_raw);
    if (k.is_zero()) continue;

    auto r_point = P256Point::generator().mul(k).to_affine();
    if (!r_point) continue;
    P256Fr r = P256Fr::from_u256_reduce(r_point->first.to_u256());
    if (r.is_zero()) continue;
    P256Fr s = k.inverse() * (z + r * secret_);
    if (s.is_zero()) continue;
    return {r, s};
  }
}

EcdsaSignature EcdsaKeyPair::sign(std::string_view message) const {
  return sign(sv_bytes(message));
}

bool ecdsa_verify(const P256Point& public_key,
                  std::span<const std::uint8_t> message,
                  const EcdsaSignature& sig) {
  if (sig.r.is_zero() || sig.s.is_zero()) return false;
  if (public_key.is_infinity() || !public_key.on_curve()) return false;
  P256Fr z = hash_to_scalar(message);
  P256Fr s_inv = sig.s.inverse();
  P256Fr u1 = z * s_inv;
  P256Fr u2 = sig.r * s_inv;
  // u1 G + u2 Q as one Straus multi-scalar multiplication: the doubling
  // ladder is shared between the two terms.
  const std::array<P256Point, 2> bases = {P256Point::generator(), public_key};
  const std::array<bigint::U256, 2> scalars = {u1.to_u256(), u2.to_u256()};
  P256Point candidate = ec::msm_u256<P256Point>(bases, scalars);
  auto affine = candidate.to_affine();
  if (!affine) return false;
  return P256Fr::from_u256_reduce(affine->first.to_u256()) == sig.r;
}

bool ecdsa_verify(const P256Point& public_key, std::string_view message,
                  const EcdsaSignature& sig) {
  return ecdsa_verify(public_key, sv_bytes(message), sig);
}

}  // namespace ibbe::pki
