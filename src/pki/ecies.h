// ECIES over P-256: ephemeral ECDH -> HKDF-SHA256 -> AES-256-GCM.
//
// This is the public-key encryption primitive of the HE-PKI baseline (each
// group member's copy of the group key is an ECIES ciphertext) and of the
// user-key provisioning channel in the attestation flow.
#pragma once

#include <optional>
#include <span>

#include "crypto/drbg.h"
#include "ec/curves.h"
#include "field/fields.h"
#include "util/bytes.h"

namespace ibbe::pki {

class EciesKeyPair {
 public:
  static EciesKeyPair generate(crypto::Drbg& rng);
  static EciesKeyPair from_secret(std::span<const std::uint8_t> secret32);

  [[nodiscard]] const ec::P256Point& public_key() const { return pub_; }
  [[nodiscard]] util::Bytes public_key_bytes() const {
    return ec::p256_to_bytes(pub_);
  }

  /// Decrypts a ciphertext produced by ecies_encrypt for this key;
  /// std::nullopt on any authentication failure.
  [[nodiscard]] std::optional<util::Bytes> decrypt(
      std::span<const std::uint8_t> ciphertext,
      std::span<const std::uint8_t> aad = {}) const;

 private:
  EciesKeyPair(field::P256Fr secret, ec::P256Point pub)
      : secret_(secret), pub_(pub) {}

  field::P256Fr secret_;
  ec::P256Point pub_;
};

/// Ciphertext layout: ephemeral-pub(33) || GCM(ct || tag). The GCM nonce is
/// fixed to zero — safe because every encryption uses a fresh ephemeral key.
util::Bytes ecies_encrypt(const ec::P256Point& recipient,
                          std::span<const std::uint8_t> plaintext,
                          crypto::Drbg& rng,
                          std::span<const std::uint8_t> aad = {});

/// Serialized overhead on top of the plaintext length.
constexpr std::size_t ecies_overhead = 33 + 16;

}  // namespace ibbe::pki
