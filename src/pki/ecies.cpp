#include "pki/ecies.h"

#include <stdexcept>

#include "crypto/gcm.h"
#include "crypto/hmac.h"

namespace ibbe::pki {

using ec::P256Point;
using field::P256Fr;

namespace {

util::Bytes derive_key(const P256Point& shared, std::span<const std::uint8_t> eph_pub) {
  auto affine = shared.to_affine();
  if (!affine) throw std::logic_error("ECIES: degenerate shared secret");
  auto x = affine->first.to_be_bytes();
  util::Bytes ikm(x.begin(), x.end());
  ikm.insert(ikm.end(), eph_pub.begin(), eph_pub.end());
  return crypto::hkdf({}, ikm, "ibbe-sgx:ecies:v1", 32);
}

const util::Bytes& zero_nonce() {
  static const util::Bytes nonce(12, 0);
  return nonce;
}

}  // namespace

EciesKeyPair EciesKeyPair::generate(crypto::Drbg& rng) {
  while (true) {
    auto raw = rng.bytes(32);
    P256Fr secret = P256Fr::from_be_bytes_reduce(raw);
    if (!secret.is_zero()) {
      return {secret, P256Point::generator().mul(secret)};
    }
  }
}

EciesKeyPair EciesKeyPair::from_secret(std::span<const std::uint8_t> secret32) {
  P256Fr secret = P256Fr::from_be_bytes_reduce(secret32);
  if (secret.is_zero()) throw std::invalid_argument("ECIES: secret reduces to zero");
  return {secret, P256Point::generator().mul(secret)};
}

util::Bytes ecies_encrypt(const P256Point& recipient,
                          std::span<const std::uint8_t> plaintext,
                          crypto::Drbg& rng, std::span<const std::uint8_t> aad) {
  if (recipient.is_infinity() || !recipient.on_curve()) {
    throw std::invalid_argument("ECIES: invalid recipient key");
  }
  P256Fr eph;
  do {
    auto raw = rng.bytes(32);
    eph = P256Fr::from_be_bytes_reduce(raw);
  } while (eph.is_zero());

  auto eph_pub = ec::p256_to_bytes(P256Point::generator().mul(eph));
  auto key = derive_key(recipient.mul(eph), eph_pub);

  crypto::Aes256Gcm gcm(key);
  auto sealed = gcm.seal(zero_nonce(), plaintext, aad);

  util::Bytes out = eph_pub;
  out.insert(out.end(), sealed.begin(), sealed.end());
  return out;
}

std::optional<util::Bytes> EciesKeyPair::decrypt(
    std::span<const std::uint8_t> ciphertext,
    std::span<const std::uint8_t> aad) const {
  if (ciphertext.size() < ecies_overhead) return std::nullopt;
  P256Point eph_pub;
  try {
    eph_pub = ec::p256_from_bytes(ciphertext.first(33));
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
  if (eph_pub.is_infinity()) return std::nullopt;
  auto key = derive_key(eph_pub.mul(secret_), ciphertext.first(33));
  crypto::Aes256Gcm gcm(key);
  return gcm.open(zero_nonce(), ciphertext.subspan(33), aad);
}

}  // namespace ibbe::pki
