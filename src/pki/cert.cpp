#include "pki/cert.h"

namespace ibbe::pki {

util::Bytes Certificate::signed_payload() const {
  util::ByteWriter w;
  w.str(subject);
  w.blob(public_key);
  w.blob(measurement);
  w.str(issuer);
  return w.take();
}

util::Bytes Certificate::to_bytes() const {
  util::ByteWriter w;
  w.str(subject);
  w.blob(public_key);
  w.blob(measurement);
  w.str(issuer);
  w.raw(signature.to_bytes());
  return w.take();
}

Certificate Certificate::from_bytes(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  Certificate cert;
  cert.subject = r.str();
  cert.public_key = r.blob();
  cert.measurement = r.blob();
  cert.issuer = r.str();
  cert.signature = EcdsaSignature::from_bytes(r.raw(EcdsaSignature::serialized_size));
  r.expect_end();
  return cert;
}

Certificate CertificateAuthority::issue(std::string subject,
                                        util::Bytes public_key,
                                        util::Bytes measurement) const {
  Certificate cert;
  cert.subject = std::move(subject);
  cert.public_key = std::move(public_key);
  cert.measurement = std::move(measurement);
  cert.issuer = name_;
  cert.signature = key_.sign(cert.signed_payload());
  return cert;
}

bool CertificateAuthority::verify(const Certificate& cert,
                                  const ec::P256Point& ca_key) {
  return ecdsa_verify(ca_key, cert.signed_payload(), cert.signature);
}

}  // namespace ibbe::pki
