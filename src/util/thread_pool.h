// Work-stealing thread pool for the partition-parallel hot paths.
//
// Design constraints, in order:
//
//   1. **Determinism.** Every parallel site in this repo writes results into
//      pre-sized output slots — task i owns slot i and nothing else — and all
//      randomness is drawn on the calling thread BEFORE the fan-out, in the
//      exact order the serial code would draw it. Under that contract the
//      pool only changes WHEN work happens, never WHAT is computed, so
//      parallel outputs are bitwise-identical to the serial path at every
//      thread count (pinned by tests/parallel_equivalence_test.cpp).
//   2. **Serial recoverability.** `IBBE_THREADS=1` (or a pool built with
//      `threads <= 1`, or the `-DIBBE_SINGLE_THREAD=ON` compile mode) spawns
//      no workers at all: `parallel_for` degenerates to an inline loop on the
//      calling thread. CI runs the whole suite this way on every commit.
//   3. **Simplicity over peak scheduler throughput.** Tasks here are
//      microseconds-to-milliseconds of pairing/EC arithmetic, so a simple
//      lock-based stealing queue (per-worker deque + mutex; LIFO pop of own
//      work, FIFO steal from victims) is indistinguishable from a Chase-Lev
//      deque at our grain sizes and is trivially ThreadSanitizer-clean.
//
// Scheduling: `parallel_for` splits the index range into chunks (at least
// `grain` indexes each, at most ~4 chunks per thread so skewed task costs
// can rebalance by stealing), round-robins them over the worker deques, and
// then the CALLING thread participates — it drains queued chunks alongside
// the workers and only sleeps when every chunk is claimed. A pool with W
// workers therefore gives W+1-way parallelism; `ThreadPool(t)` sizes itself
// as t total threads including the caller.
//
// Exceptions thrown by tasks are captured (first one wins), the other
// chunks of that batch still execute (slots stay independently valid; the
// throwing chunk abandons its remaining indexes, as a serial loop would),
// and the exception is rethrown on the calling thread once the batch
// completes. The pool survives and is reusable afterwards.
//
// Nesting: a `parallel_for` issued from inside a pool task executes inline
// on that worker (no deadlock, no oversubscription); the outer fan-out
// already owns the parallelism.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ibbe::util {

class ThreadPool {
 public:
  /// A pool whose total parallelism (workers + participating caller) is
  /// `threads`; `threads <= 1` spawns no workers and executes everything
  /// inline. `threads == 0` resolves the automatic count (the IBBE_THREADS
  /// environment variable if set, else std::thread::hardware_concurrency).
  explicit ThreadPool(std::size_t threads = 0);

  /// Completes all queued `submit` work, then joins the workers. A
  /// `parallel_for` must not be in flight on another thread.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism: worker threads + the participating caller. 1 means
  /// fully inline.
  [[nodiscard]] std::size_t threads() const { return workers_.size() + 1; }

  /// Invokes fn(i) for every i in [begin, end), at least `grain` consecutive
  /// indexes per task. fn must confine its writes to per-index state (slot i
  /// for index i); under that contract results are identical to the serial
  /// loop. Blocks until every index ran; rethrows the first task exception.
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    Fn&& fn) {
    run_chunks(begin, end, grain, [&fn](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }

  /// parallel_for returning a vector: out[i] = fn(i). T must be default-
  /// constructible (slots are pre-sized before the fan-out).
  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> parallel_map(std::size_t n, std::size_t grain,
                                            Fn&& fn) {
    std::vector<T> out(n);
    parallel_for(0, n, grain, [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Fire-and-track single task (used by the shutdown tests and available
  /// for background work); runs inline when the pool has no workers. The
  /// destructor completes all submitted tasks before joining.
  std::future<void> submit(std::function<void()> fn);

  /// The process-wide pool the library's parallel sites use. Built on first
  /// use with the automatic thread count (IBBE_THREADS env, else
  /// hardware_concurrency).
  static ThreadPool& global();

  /// Rebuilds the global pool with `threads` total threads (0 = automatic).
  /// For tests and benches sweeping thread counts: callers must be quiescent
  /// (no parallel work in flight) across this call.
  static void set_global_threads(std::size_t threads);

  /// The automatic thread count `ThreadPool(0)` resolves to.
  [[nodiscard]] static std::size_t configured_threads();

 private:
  struct Worker;
  struct Batch;
  using Chunk = std::function<void()>;

  void run_chunks(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);
  void worker_loop(std::size_t self);
  /// Pops a chunk: worker `self` prefers the back of its own deque (LIFO),
  /// then steals from the front of the others (FIFO); external threads
  /// (self == npos) scan fronts only. Returns false when every deque is
  /// empty at scan time.
  bool try_pop(std::size_t self, Chunk& out);
  void push_chunks(std::vector<Chunk> chunks);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Guards sleep/wake of idle workers; pending_ counts queued (not yet
  // claimed) chunks so workers can check for work without taking every
  // deque mutex.
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> next_victim_{0};  // round-robin push cursor
};

}  // namespace ibbe::util
