#include "util/bytes.h"

namespace ibbe::util {

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void ByteWriter::raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::blob(std::span<const std::uint8_t> data) {
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteReader::need(std::size_t n) const {
  if (data_.size() - pos_ < n) throw DeserializeError("ByteReader: truncated input");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = v << 8 | data_[pos_ + i];
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | data_[pos_ + i];
  pos_ += 8;
  return v;
}

Bytes ByteReader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::size_t ByteReader::count(std::size_t min_element_bytes) {
  if (min_element_bytes == 0) {
    throw std::invalid_argument("ByteReader::count: min_element_bytes must be > 0");
  }
  std::uint32_t n = u32();
  if (n > remaining() / min_element_bytes) {
    throw DeserializeError("ByteReader: element count exceeds input size");
  }
  return n;
}

Bytes ByteReader::blob() {
  std::uint32_t n = u32();
  return raw(n);
}

std::string ByteReader::str() {
  std::uint32_t n = u32();
  need(n);
  std::string out(reinterpret_cast<const char*>(data_.data()) + pos_, n);
  pos_ += n;
  return out;
}

void ByteReader::expect_end() const {
  if (pos_ != data_.size()) throw DeserializeError("ByteReader: trailing bytes");
}

bool ct_equal(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace ibbe::util
