#include "util/retry.h"

namespace ibbe::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::chrono::microseconds RetryPolicy::delay(int attempt) const {
  if (base_delay.count() <= 0 || attempt <= 0) {
    return std::chrono::microseconds{0};
  }
  double d = static_cast<double>(base_delay.count());
  for (int i = 1; i < attempt; ++i) {
    d *= multiplier;
    if (d >= static_cast<double>(max_delay.count())) {
      d = static_cast<double>(max_delay.count());
      break;
    }
  }
  if (jitter > 0.0) {
    // Deterministic in (seed, attempt): the same failing run backs off the
    // same way every replay.
    std::uint64_t s = seed + static_cast<std::uint64_t>(attempt) * 0x2545f4914f6cdd1dull;
    double unit = static_cast<double>(splitmix64(s) >> 11) /
                  static_cast<double>(1ull << 53);  // [0, 1)
    d *= 1.0 - jitter + 2.0 * jitter * unit;
  }
  return std::chrono::microseconds{static_cast<std::int64_t>(d)};
}

}  // namespace ibbe::util
