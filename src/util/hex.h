// Hexadecimal encoding helpers.
//
// Used pervasively for test vectors, fingerprints shown in logs, and the
// human-readable forms of field elements and digests.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ibbe::util {

/// Encodes `data` as a lowercase hexadecimal string.
std::string to_hex(std::span<const std::uint8_t> data);

/// Decodes a hexadecimal string (upper or lower case, optional "0x" prefix).
/// Throws std::invalid_argument on malformed input (odd length, bad digit).
std::vector<std::uint8_t> from_hex(std::string_view hex);

}  // namespace ibbe::util
