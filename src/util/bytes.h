// Byte-buffer utilities: the `Bytes` alias plus a small length-prefixed
// binary serialization layer (`ByteWriter` / `ByteReader`).
//
// All persistent artifacts of the system (group metadata, sealed blobs,
// certificates, ciphertexts) serialize through these two classes so that the
// storage footprint reported by the benchmarks is the exact number of bytes
// that would travel to the cloud store.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ibbe::util {

using Bytes = std::vector<std::uint8_t>;

/// Thrown by ByteReader when the input is truncated or malformed.
class DeserializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends fixed-width integers (big-endian) and length-prefixed blobs to a
/// growing buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Raw bytes, no length prefix. Caller must know the width when reading.
  void raw(std::span<const std::uint8_t> data);
  /// u32 length prefix followed by the bytes.
  void blob(std::span<const std::uint8_t> data);
  /// u32 length prefix followed by UTF-8 bytes.
  void str(std::string_view s);

  [[nodiscard]] const Bytes& bytes() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Mirror of ByteWriter. Reads consume the buffer front-to-back; any
/// out-of-bounds read throws DeserializeError.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  /// Reads exactly `n` raw bytes.
  Bytes raw(std::size_t n);
  /// Reads a u32 length prefix then that many bytes.
  Bytes blob();
  std::string str();
  /// Reads a u32 element count and validates it against the bytes remaining
  /// (each element must consume at least `min_element_bytes` > 0), so a
  /// hostile prefix fails with DeserializeError before any allocation
  /// instead of driving a reserve() into std::bad_alloc.
  std::size_t count(std::size_t min_element_bytes);

  [[nodiscard]] bool empty() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// Throws unless the whole buffer has been consumed.
  void expect_end() const;

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Constant-time equality for secrets (tags, keys). Returns false on length
/// mismatch without leaking where the difference is.
bool ct_equal(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

}  // namespace ibbe::util
