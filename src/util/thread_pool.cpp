#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <stdexcept>
#include <string>

namespace ibbe::util {

namespace {

/// Depth of pool-task nesting on this thread: a parallel_for issued from
/// inside a task executes inline (the outer fan-out owns the parallelism and
/// a blocking wait from a worker could deadlock the pool against itself).
thread_local int tls_task_depth = 0;

struct DepthGuard {
  DepthGuard() { ++tls_task_depth; }
  ~DepthGuard() { --tls_task_depth; }
};

}  // namespace

struct ThreadPool::Worker {
  std::mutex mutex;
  std::deque<Chunk> deque;
};

/// Completion state of one parallel_for call, on the caller's stack. Chunks
/// hold a pointer to it only while remaining > 0; the caller cannot return
/// (and so the Batch cannot die) before remaining reaches 0.
struct ThreadPool::Batch {
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t remaining = 0;
  std::exception_ptr error;  // first task exception, rethrown by the caller
};

std::size_t ThreadPool::configured_threads() {
#ifdef IBBE_SINGLE_THREAD
  return 1;
#else
  if (const char* env = std::getenv("IBBE_THREADS");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<std::size_t>(v);
    }
  }
  std::size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
#endif
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = configured_threads();
#ifdef IBBE_SINGLE_THREAD
  threads = 1;  // compile-time serial mode: never spawn workers
#endif
  const std::size_t workers = threads - 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // The lock orders the flag flip against a worker's "queues empty, go to
    // sleep" check — without it a worker could re-check pending_, miss the
    // flag, and sleep through the final notify.
    std::lock_guard lock(wake_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  wake_cv_.notify_all();
  for (auto& t : threads_) t.join();
  // Workers drain their deques before exiting (stop only breaks the loop
  // when no task is claimable), so queued submit() work has completed here.
}

void ThreadPool::push_chunks(std::vector<Chunk> chunks) {
  const std::size_t w = workers_.size();
  const std::size_t start =
      next_victim_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    Worker& victim = *workers_[(start + c) % w];
    std::lock_guard lock(victim.mutex);
    victim.deque.push_back(std::move(chunks[c]));
  }
  {
    // Publishing pending_ under the wake mutex orders it against a worker's
    // predicate check, so the notify below cannot slip into the window
    // between that check and the worker's sleep (lost wakeup).
    std::lock_guard lock(wake_mutex_);
    pending_.fetch_add(chunks.size(), std::memory_order_release);
  }
  if (chunks.size() == 1) {
    wake_cv_.notify_one();
  } else {
    wake_cv_.notify_all();
  }
}

bool ThreadPool::try_pop(std::size_t self, Chunk& out) {
  const std::size_t w = workers_.size();
  // Own deque first, newest chunk (LIFO keeps a worker on the range it was
  // handed); victims oldest-first (FIFO steals the chunk its owner would
  // reach last, minimizing contention).
  if (self < w) {
    Worker& own = *workers_[self];
    std::lock_guard lock(own.mutex);
    if (!own.deque.empty()) {
      out = std::move(own.deque.back());
      own.deque.pop_back();
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  for (std::size_t k = 0; k < w; ++k) {
    const std::size_t v = (self < w ? self + 1 + k : k) % w;
    if (v == self) continue;
    Worker& victim = *workers_[v];
    std::lock_guard lock(victim.mutex);
    if (!victim.deque.empty()) {
      out = std::move(victim.deque.front());
      victim.deque.pop_front();
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  Chunk chunk;
  while (true) {
    if (try_pop(self, chunk)) {
      DepthGuard depth;
      chunk();       // exceptions are captured inside the chunk wrapper
      chunk = {};    // release captured state promptly
      continue;
    }
    std::unique_lock lock(wake_mutex_);
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
    wake_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
  }
}

void ThreadPool::run_chunks(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  const std::size_t n = end > begin ? end - begin : 0;
  if (n == 0) return;
  const std::size_t g = std::max<std::size_t>(1, grain);
  // Inline when serial mode, nested inside a pool task, or the range fits a
  // single grain — the serial path, bit-for-bit.
  if (workers_.empty() || tls_task_depth > 0 || n <= g) {
    body(begin, end);
    return;
  }

  // ~4 chunks per thread gives the stealing room to rebalance skewed task
  // costs without shrinking chunks below the grain.
  const std::size_t max_chunks =
      std::min((n + g - 1) / g, 4 * (workers_.size() + 1));
  const std::size_t chunk_size = (n + max_chunks - 1) / max_chunks;
  const std::size_t n_chunks = (n + chunk_size - 1) / chunk_size;

  Batch batch;
  batch.remaining = n_chunks;
  std::vector<Chunk> chunks;
  chunks.reserve(n_chunks);
  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    chunks.push_back([&batch, &body, lo, hi] {
      try {
        body(lo, hi);
      } catch (...) {
        std::lock_guard lock(batch.mutex);
        if (!batch.error) batch.error = std::current_exception();
      }
      std::lock_guard lock(batch.mutex);
      if (--batch.remaining == 0) batch.done_cv.notify_all();
    });
  }
  push_chunks(std::move(chunks));

  // Participate: the caller drains chunks (its own batch's, or a concurrent
  // caller's — work conservation either way) until the queues are empty,
  // then sleeps until the last in-flight chunk of THIS batch completes.
  Chunk chunk;
  while (true) {
    {
      std::lock_guard lock(batch.mutex);
      if (batch.remaining == 0) break;
    }
    if (try_pop(workers_.size(), chunk)) {
      DepthGuard depth;
      chunk();
      chunk = {};
      continue;
    }
    std::unique_lock lock(batch.mutex);
    batch.done_cv.wait(lock, [&batch] { return batch.remaining == 0; });
    break;
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> fut = task->get_future();
  if (workers_.empty()) {
    (*task)();  // inline mode: run on the caller, exceptions go to the future
    return fut;
  }
  std::vector<Chunk> one;
  one.push_back([task] { (*task)(); });
  push_chunks(std::move(one));
  return fut;
}

namespace {

std::mutex& global_mutex() {
  static std::mutex m;
  return m;
}

std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard lock(global_mutex());
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  std::lock_guard lock(global_mutex());
  auto& slot = global_slot();
  slot.reset();  // join the old pool first: at most one global pool alive
  slot = std::make_unique<ThreadPool>(threads);
}

}  // namespace ibbe::util
