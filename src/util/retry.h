// Retry/backoff discipline for unreliable-store round trips.
//
// A RetryPolicy describes how a caller should space repeated attempts at an
// operation that can fail transiently: exponential backoff with a cap, a
// *deterministic* jitter (derived from the policy seed and the attempt
// number, so a failing run replays identically from its seed — the property
// the fault-injection harness depends on), and two budgets: a maximum
// attempt count and an optional wall-clock deadline.
//
// The policy is pure data plus a pure delay() function; retry_on<E>() is the
// generic loop, and retry_faults() is the loop specialised to the
// util/errors.h taxonomy: it retries exactly the FaultErrors whose kind is
// retryable (transient), while crash and integrity faults always propagate —
// so no retry loop anywhere can swallow a simulated process death or
// evidence of a Byzantine store.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "util/errors.h"

namespace ibbe::util {

struct RetryPolicy {
  /// Total tries (first attempt included). Exhausting them rethrows.
  int max_attempts = 6;
  /// Backoff before retry k (k >= 1) is base_delay * multiplier^(k-1),
  /// capped at max_delay, then jittered.
  std::chrono::microseconds base_delay{200};
  double multiplier = 2.0;
  std::chrono::microseconds max_delay{20'000};
  /// 0 = no wall-clock budget. When set, no retry starts past the deadline.
  std::chrono::milliseconds deadline{0};
  /// Fractional jitter: the delay is scaled by a factor drawn
  /// deterministically from [1 - jitter, 1 + jitter].
  double jitter = 0.25;
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;

  /// Deterministic backoff before retry `attempt` (1-based).
  [[nodiscard]] std::chrono::microseconds delay(int attempt) const;

  /// A policy with zero sleeps — same attempt budget, no wall-clock cost.
  /// Tests and in-process benches use this so fault schedules stay fast.
  [[nodiscard]] RetryPolicy without_delays() const {
    RetryPolicy p = *this;
    p.base_delay = std::chrono::microseconds{0};
    p.max_delay = std::chrono::microseconds{0};
    return p;
  }
};

/// SplitMix64 step: the deterministic-jitter (and fault-plan) PRNG.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// Runs `f`, retrying on exceptions of type `Exc` per `policy`. Any other
/// exception (and `Exc` once the attempt/deadline budget is exhausted)
/// propagates. `retries` (optional) is incremented once per retry taken.
template <typename Exc, typename F>
auto retry_on(const RetryPolicy& policy, F&& f, std::uint64_t* retries = nullptr)
    -> decltype(f()) {
  const auto start = std::chrono::steady_clock::now();
  for (int attempt = 1;; ++attempt) {
    try {
      return f();
    } catch (const Exc&) {
      if (attempt >= policy.max_attempts) throw;
      if (policy.deadline.count() > 0 &&
          std::chrono::steady_clock::now() - start >= policy.deadline) {
        throw;
      }
      if (retries != nullptr) ++*retries;
      auto pause = policy.delay(attempt);
      if (pause.count() > 0) std::this_thread::sleep_for(pause);
    }
  }
}

/// Runs `f`, retrying per `policy` exactly the FaultErrors whose kind()
/// reports retryable() (i.e. transient faults). Crash and integrity faults —
/// and any non-FaultError exception — propagate immediately, budget or not.
template <typename F>
auto retry_faults(const RetryPolicy& policy, F&& f,
                  std::uint64_t* retries = nullptr) -> decltype(f()) {
  const auto start = std::chrono::steady_clock::now();
  for (int attempt = 1;; ++attempt) {
    try {
      return f();
    } catch (const FaultError& e) {
      if (!e.retryable()) throw;
      if (attempt >= policy.max_attempts) throw;
      if (policy.deadline.count() > 0 &&
          std::chrono::steady_clock::now() - start >= policy.deadline) {
        throw;
      }
      if (retries != nullptr) ++*retries;
      auto pause = policy.delay(attempt);
      if (pause.count() > 0) std::this_thread::sleep_for(pause);
    }
  }
}

}  // namespace ibbe::util
