// Shared fault taxonomy for the unreliable-cloud layers.
//
// Every failure the storage stack can surface falls into one of three kinds,
// and the kind — not the call site — decides whether a retry loop may absorb
// it:
//
//   * transient — a round trip failed but may succeed if repeated (network
//                 blip, HTTP 5xx, throttling, a lagging replica). The ONLY
//                 retryable kind.
//   * crash     — the calling process dies at this exact point. Never retried
//                 in place: recovery happens in a fresh process
//                 (AdminApi::recover).
//   * integrity — cryptographic evidence of tampering: a forged signature, a
//                 freshness attestation whose binding does not match the data
//                 it vouches for. Retrying cannot help and silently absorbing
//                 it would defeat the Byzantine defenses, so retry loops must
//                 always propagate it.
//
// cloud/store.h aliases its historical TransientError/CrashError names to
// these types, so `catch (const cloud::TransientError&)` and
// `util::retry_faults` (retry.h) agree on one classification. fault.h's
// injectors (FaultInjectingStore, MaliciousStore) throw them directly.
//
// The network transport (src/net) uses the SAME taxonomy rather than its own
// exception family: a disconnect, timeout, torn frame or overload shed is
// transient (drop the connection, reconnect, retry); a frame that fails AEAD
// authentication or a server identity signature that does not verify is
// integrity (tampering on the wire — never retried); and store-side faults
// forwarded across the wire re-throw as their original kinds.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace ibbe::util {

enum class FaultKind : std::uint8_t {
  transient,  // failed round trip; retry may succeed
  crash,      // simulated process death; never retried in place
  integrity,  // evidence of tampering; must propagate
};

[[nodiscard]] constexpr const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::transient: return "transient";
    case FaultKind::crash: return "crash";
    case FaultKind::integrity: return "integrity";
  }
  return "unknown";
}

/// The retryability trait: one place decides which kinds a backoff loop may
/// absorb (util::retry_faults consults this, as may any hand-rolled loop).
[[nodiscard]] constexpr bool fault_retryable(FaultKind kind) {
  return kind == FaultKind::transient;
}

/// Common base so generic code can classify a caught fault without an
/// exception-type ladder.
class FaultError : public std::runtime_error {
 public:
  FaultError(FaultKind kind, const std::string& what)
      : std::runtime_error(std::string(fault_kind_name(kind)) + " fault: " +
                           what),
        kind_(kind) {}

  [[nodiscard]] FaultKind kind() const { return kind_; }
  [[nodiscard]] bool retryable() const { return fault_retryable(kind_); }

 private:
  FaultKind kind_;
};

/// A cloud round trip failed but may succeed if retried. NOTE: a failed
/// *write* is ambiguous — the value may or may not have been applied before
/// the error — so all writers must be idempotent or CAS-guarded.
struct TransientError : FaultError {
  explicit TransientError(const std::string& what)
      : FaultError(FaultKind::transient, what) {}
};

/// Simulated process death at this exact point; whatever was already written
/// stays behind. Deliberately not a TransientError so no retry loop can
/// swallow it.
struct CrashError : FaultError {
  explicit CrashError(const std::string& what)
      : FaultError(FaultKind::crash, what) {}
};

/// Cryptographic evidence of a Byzantine store: forged metadata, or a
/// freshness attestation that does not bind the state it is stored with.
/// Never retryable — callers surface it.
struct IntegrityError : FaultError {
  explicit IntegrityError(const std::string& what)
      : FaultError(FaultKind::integrity, what) {}
};

}  // namespace ibbe::util
