// Small sample-statistics helper for the benchmark harnesses: mean,
// percentiles and CDF extraction (Fig. 8a of the paper plots a latency CDF).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace ibbe::util {

/// Accumulates double-valued samples and answers summary queries.
class Summary {
 public:
  void add(double v) { samples_.push_back(v); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;
  /// p in [0,1]; nearest-rank percentile.
  [[nodiscard]] double percentile(double p) const;
  /// Returns `points` (value, cumulative fraction) pairs tracing the CDF.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf(std::size_t points) const;

 private:
  // Sorted lazily (and cached) by the query methods.
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
};

}  // namespace ibbe::util
