#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ibbe::util {

void Summary::ensure_sorted() const {
  if (sorted_.size() != samples_.size()) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
  }
}

double Summary::mean() const {
  if (samples_.empty()) throw std::logic_error("Summary: no samples");
  double s = 0;
  for (double v : samples_) s += v;
  return s / static_cast<double>(samples_.size());
}

double Summary::min() const {
  ensure_sorted();
  if (sorted_.empty()) throw std::logic_error("Summary: no samples");
  return sorted_.front();
}

double Summary::max() const {
  ensure_sorted();
  if (sorted_.empty()) throw std::logic_error("Summary: no samples");
  return sorted_.back();
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  double m = mean();
  double acc = 0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::percentile(double p) const {
  ensure_sorted();
  if (sorted_.empty()) throw std::logic_error("Summary: no samples");
  p = std::clamp(p, 0.0, 1.0);
  auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted_.size())));
  if (rank > 0) --rank;
  return sorted_[std::min(rank, sorted_.size() - 1)];
}

std::vector<std::pair<double, double>> Summary::cdf(std::size_t points) const {
  ensure_sorted();
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    double frac = static_cast<double>(i) / static_cast<double>(points);
    out.emplace_back(percentile(frac), frac);
  }
  return out;
}

}  // namespace ibbe::util
