#include "util/hex.h"

#include <stdexcept>

namespace ibbe::util {

namespace {

constexpr char digits[] = "0123456789abcdef";

int nibble_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: invalid hex digit");
}

}  // namespace

std::string to_hex(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0x0f]);
  }
  return out;
}

std::vector<std::uint8_t> from_hex(std::string_view hex) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
  if (hex.size() % 2 != 0) throw std::invalid_argument("from_hex: odd length");
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(nibble_value(hex[i]) << 4 |
                                            nibble_value(hex[i + 1])));
  }
  return out;
}

}  // namespace ibbe::util
