// Montgomery multiplication backends: portable C++ and x86-64 MULX/ADX.
//
// Two interchangeable implementations of the same three primitives —
// 256x256 -> 512 multiply, 512 -> 256 Montgomery reduction (REDC), and the
// fused Montgomery multiply — selected once per process:
//
//   * portable — unsigned __int128 carry chains. Always compiled; the
//     differential oracle for the accelerated path and the fallback on
//     non-x86 targets.
//   * accel — inline-asm 4-limb schoolbook with flattened dual carry chains
//     (MULX for flag-free products, ADCX/ADOX for two independent carry
//     chains per row). Compiled on x86-64 GCC/Clang unless the build forces
//     portability (-DIBBE_FORCE_PORTABLE_MUL=ON), used at runtime only when
//     CPUID reports BMI2+ADX and the IBBE_FORCE_PORTABLE_MUL environment
//     variable is unset/0.
//
// Both paths produce canonical (fully reduced) REDC outputs, so every build
// and machine computes bit-identical results — the backends differ in speed
// only. `MontgomeryCtx` (mont.h) owns the per-modulus dispatch; this header
// keeps the primitives inline so the field layer's hot loops pay no extra
// call.
//
// REDC here accepts ANY 512-bit input, not just products of reduced
// operands: the lazy-reduction tower (field/lazy.h) accumulates several
// unreduced products (bounded sums < 2^512) before reducing, and the final
// correction loop brings the quotient-estimate back below the modulus
// (at most ~R/n + 1 ~ 5 subtractions for the 254-bit BN primes; one for the
// fused multiply of reduced operands).
//
// Precondition for the asm REDC: n.limb[3] <= 2^64 - 2 (the per-round carry
// word hi + CF + OF <= n3 + 1 must not wrap). All four project moduli
// satisfy this; MontgomeryCtx checks it before enabling the backend.
#pragma once

#include <cstdint>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(IBBE_PORTABLE_MUL_ONLY)
#define IBBE_HAVE_MULX_ASM 1
#else
#define IBBE_HAVE_MULX_ASM 0
#endif

namespace ibbe::bigint::backend {

/// True when the MULX/ADX path is compiled in, the CPU reports BMI2+ADX, and
/// the IBBE_FORCE_PORTABLE_MUL environment variable does not force the
/// portable path. Resolved once on first call (thread-safe static).
bool accelerated();

/// Human-readable backend description for bench headers and logs, including
/// the reason when the portable path is active.
const char* name();

// ------------------------------------------------------------ portable path

/// out = a * b, full 512-bit product (operand scanning, u128 carries).
inline void mul4_portable(std::uint64_t out[8], const std::uint64_t a[4],
                          const std::uint64_t b[4]) {
  using u128 = unsigned __int128;
  std::uint64_t t[8] = {};
  for (int i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      u128 cur = static_cast<u128>(a[j]) * b[i] + t[i + j] + carry;
      t[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    t[i + 4] = carry;
  }
  for (int i = 0; i < 8; ++i) out[i] = t[i];
}

namespace detail {

/// r >= n over 4 limbs.
inline bool geq4(const std::uint64_t r[4], const std::uint64_t n[4]) {
  for (int i = 3; i >= 0; --i) {
    if (r[i] != n[i]) return r[i] > n[i];
  }
  return true;
}

/// r -= n over 4 limbs (borrow discarded — callers subtract only when the
/// value, including any carry bit they track, is >= n).
inline void sub4(std::uint64_t r[4], const std::uint64_t n[4]) {
  using u128 = unsigned __int128;
  u128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    u128 d = static_cast<u128>(r[i]) - n[i] - borrow;
    r[i] = static_cast<std::uint64_t>(d);
    borrow = (d >> 64) & 1;
  }
}

/// Shared final correction: value = extra * 2^256 + r with extra in {0, 1},
/// value < 2^256 + n. Brings r to the canonical representative.
inline void redc_correct(std::uint64_t r[4], std::uint64_t extra,
                         const std::uint64_t n[4]) {
  if (extra) sub4(r, n);  // the borrow cancels the 2^256 carry bit
  while (geq4(r, n)) sub4(r, n);
}

}  // namespace detail

/// Montgomery reduction of an arbitrary 512-bit t: out = t * 2^-256 mod n,
/// canonical. n odd, n0inv = -n^-1 mod 2^64.
inline void redc_portable(std::uint64_t out[4], const std::uint64_t t_in[8],
                          const std::uint64_t n[4], std::uint64_t n0inv) {
  using u128 = unsigned __int128;
  std::uint64_t t[9];
  for (int i = 0; i < 8; ++i) t[i] = t_in[i];
  t[8] = 0;
  for (int j = 0; j < 4; ++j) {
    std::uint64_t m = t[j] * n0inv;
    u128 cur = static_cast<u128>(m) * n[0] + t[j];
    std::uint64_t carry = static_cast<std::uint64_t>(cur >> 64);
    for (int i = 1; i < 4; ++i) {
      cur = static_cast<u128>(m) * n[i] + t[j + i] + carry;
      t[j + i] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    for (int k = j + 4; k < 9 && carry; ++k) {
      u128 s = static_cast<u128>(t[k]) + carry;
      t[k] = static_cast<std::uint64_t>(s);
      carry = static_cast<std::uint64_t>(s >> 64);
    }
  }
  std::uint64_t r[4] = {t[4], t[5], t[6], t[7]};
  detail::redc_correct(r, t[8], n);
  for (int i = 0; i < 4; ++i) out[i] = r[i];
}

/// Fused Montgomery multiply, CIOS (coarsely integrated operand scanning):
/// out = a * b * 2^-256 mod n for reduced a, b. This is the seed
/// implementation, kept verbatim as the differential oracle.
inline void mont_mul_portable(std::uint64_t out[4], const std::uint64_t a[4],
                              const std::uint64_t b[4],
                              const std::uint64_t n[4], std::uint64_t n0inv) {
  using u128 = unsigned __int128;
  std::uint64_t t[6] = {0, 0, 0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    std::uint64_t bi = b[i];
    for (int j = 0; j < 4; ++j) {
      u128 cur = static_cast<u128>(a[j]) * bi + t[j] + carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    u128 s = static_cast<u128>(t[4]) + carry;
    t[4] = static_cast<std::uint64_t>(s);
    t[5] = static_cast<std::uint64_t>(s >> 64);

    std::uint64_t m = t[0] * n0inv;
    u128 cur = static_cast<u128>(m) * n[0] + t[0];
    carry = static_cast<std::uint64_t>(cur >> 64);
    for (int j = 1; j < 4; ++j) {
      cur = static_cast<u128>(m) * n[j] + t[j] + carry;
      t[j - 1] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    s = static_cast<u128>(t[4]) + carry;
    t[3] = static_cast<std::uint64_t>(s);
    t[4] = t[5] + static_cast<std::uint64_t>(s >> 64);
  }
  std::uint64_t r[4] = {t[0], t[1], t[2], t[3]};
  if (t[4] != 0 || detail::geq4(r, n)) detail::sub4(r, n);
  for (int i = 0; i < 4; ++i) out[i] = r[i];
}

// ----------------------------------------------------------- MULX/ADX path

#if IBBE_HAVE_MULX_ASM

// 4x4 schoolbook multiply of a[0..3] * b[0..3] into local registers t0..t7
// (which the expansion site must declare). Row 0 is a plain MULX/ADC chain;
// rows 1-3 accumulate with the ADCX/ADOX dual carry chains (low words ride
// the CF chain, high words the OF chain), folding both flags into the fresh
// top limb at the end of each row — the fold cannot wrap because the row's
// true carry word is < 2^64. Operands are passed as pointers with a blanket
// memory clobber: precise per-limb "m" constraints would let the product
// stay in registers across blocks, but 16-operand asm statements send GCC's
// register allocator into multi-minute compiles when inlined into unrolled
// -O3 loops.
#define IBBE_MUL4_BODY_                                                        \
  __asm__("movq 0(%[b]), %%rdx\n\t"                                            \
          "mulxq 0(%[a]), %[t0], %[t1]\n\t"                                    \
          "mulxq 8(%[a]), %%rax, %[t2]\n\t"                                    \
          "addq %%rax, %[t1]\n\t"                                              \
          "mulxq 16(%[a]), %%rax, %[t3]\n\t"                                   \
          "adcq %%rax, %[t2]\n\t"                                              \
          "mulxq 24(%[a]), %%rax, %[t4]\n\t"                                   \
          "adcq %%rax, %[t3]\n\t"                                              \
          "adcq $0, %[t4]\n\t"                                                 \
          "movq 8(%[b]), %%rdx\n\t"                                            \
          "xorq %[t5], %[t5]\n\t" /* zero + clears CF/OF */                    \
          "mulxq 0(%[a]), %%rax, %%rbx\n\t"                                    \
          "adcxq %%rax, %[t1]\n\t"                                             \
          "adoxq %%rbx, %[t2]\n\t"                                             \
          "mulxq 8(%[a]), %%rax, %%rbx\n\t"                                    \
          "adcxq %%rax, %[t2]\n\t"                                             \
          "adoxq %%rbx, %[t3]\n\t"                                             \
          "mulxq 16(%[a]), %%rax, %%rbx\n\t"                                   \
          "adcxq %%rax, %[t3]\n\t"                                             \
          "adoxq %%rbx, %[t4]\n\t"                                             \
          "mulxq 24(%[a]), %%rax, %%rbx\n\t"                                   \
          "adcxq %%rax, %[t4]\n\t"                                             \
          "adoxq %%rbx, %[t5]\n\t"                                             \
          "movl $0, %%eax\n\t" /* keeps flags; rax = 0 */                      \
          "adcxq %%rax, %[t5]\n\t"                                             \
          "movq 16(%[b]), %%rdx\n\t"                                           \
          "xorq %[t6], %[t6]\n\t"                                              \
          "mulxq 0(%[a]), %%rax, %%rbx\n\t"                                    \
          "adcxq %%rax, %[t2]\n\t"                                             \
          "adoxq %%rbx, %[t3]\n\t"                                             \
          "mulxq 8(%[a]), %%rax, %%rbx\n\t"                                    \
          "adcxq %%rax, %[t3]\n\t"                                             \
          "adoxq %%rbx, %[t4]\n\t"                                             \
          "mulxq 16(%[a]), %%rax, %%rbx\n\t"                                   \
          "adcxq %%rax, %[t4]\n\t"                                             \
          "adoxq %%rbx, %[t5]\n\t"                                             \
          "mulxq 24(%[a]), %%rax, %%rbx\n\t"                                   \
          "adcxq %%rax, %[t5]\n\t"                                             \
          "adoxq %%rbx, %[t6]\n\t"                                             \
          "movl $0, %%eax\n\t"                                                 \
          "adcxq %%rax, %[t6]\n\t"                                             \
          "movq 24(%[b]), %%rdx\n\t"                                           \
          "xorq %[t7], %[t7]\n\t"                                              \
          "mulxq 0(%[a]), %%rax, %%rbx\n\t"                                    \
          "adcxq %%rax, %[t3]\n\t"                                             \
          "adoxq %%rbx, %[t4]\n\t"                                             \
          "mulxq 8(%[a]), %%rax, %%rbx\n\t"                                    \
          "adcxq %%rax, %[t4]\n\t"                                             \
          "adoxq %%rbx, %[t5]\n\t"                                             \
          "mulxq 16(%[a]), %%rax, %%rbx\n\t"                                   \
          "adcxq %%rax, %[t5]\n\t"                                             \
          "adoxq %%rbx, %[t6]\n\t"                                             \
          "mulxq 24(%[a]), %%rax, %%rbx\n\t"                                   \
          "adcxq %%rax, %[t6]\n\t"                                             \
          "adoxq %%rbx, %[t7]\n\t"                                             \
          "movl $0, %%eax\n\t"                                                 \
          "adcxq %%rax, %[t7]\n\t"                                             \
          : [t0] "=&r"(t0), [t1] "=&r"(t1), [t2] "=&r"(t2), [t3] "=&r"(t3),    \
            [t4] "=&r"(t4), [t5] "=&r"(t5), [t6] "=&r"(t6), [t7] "=&r"(t7)     \
          : [a] "r"(a), [b] "r"(b)                                             \
          : "rax", "rbx", "rdx", "cc", "memory")

/// out = a * b, full 512-bit product.
inline void mul4_accel(std::uint64_t out[8], const std::uint64_t a[4],
                       const std::uint64_t b[4]) {
  std::uint64_t t0, t1, t2, t3, t4, t5, t6, t7;
  IBBE_MUL4_BODY_;
  out[0] = t0;
  out[1] = t1;
  out[2] = t2;
  out[3] = t3;
  out[4] = t4;
  out[5] = t5;
  out[6] = t6;
  out[7] = t7;
}

// One REDC round: m = t[j] * n0inv; t[j..j+4] += m * n (dual carry chains);
// the folded carry word (high limb + CF + OF, bounded by n3 + 1 < 2^64 for
// n3 <= 2^64 - 2) ripples through the tail limbs via TAIL.
#define IBBE_REDC_ROUND_(TJ, TJ1, TJ2, TJ3, TAIL) \
  "movq " TJ ", %%rdx\n\t"                        \
  "imulq %[n0inv], %%rdx\n\t"                     \
  "xorl %%eax, %%eax\n\t"                         \
  "mulxq 0(%[n]), %%rax, %%rbx\n\t"               \
  "adcxq %%rax, " TJ "\n\t"                       \
  "adoxq %%rbx, " TJ1 "\n\t"                      \
  "mulxq 8(%[n]), %%rax, %%rbx\n\t"               \
  "adcxq %%rax, " TJ1 "\n\t"                      \
  "adoxq %%rbx, " TJ2 "\n\t"                      \
  "mulxq 16(%[n]), %%rax, %%rbx\n\t"              \
  "adcxq %%rax, " TJ2 "\n\t"                      \
  "adoxq %%rbx, " TJ3 "\n\t"                      \
  "mulxq 24(%[n]), %%rax, %%rbx\n\t"              \
  "adcxq %%rax, " TJ3 "\n\t"                      \
  "movl $0, %%eax\n\t"                            \
  "adoxq %%rax, %%rbx\n\t"                        \
  "adcxq %%rax, %%rbx\n\t" TAIL

// The four unrolled rounds shared by both asm REDC variants. After them the
// value is t8 * 2^256 + (t4..t7) < 2^256 + n, t8 in {0, 1}.
#define IBBE_REDC_BODY_                              \
  IBBE_REDC_ROUND_("%[t0]", "%[t1]", "%[t2]",        \
                   "%[t3]",                          \
                   "addq %%rbx, %[t4]\n\t"           \
                   "adcq $0, %[t5]\n\t"              \
                   "adcq $0, %[t6]\n\t"              \
                   "adcq $0, %[t7]\n\t"              \
                   "adcq $0, %[t8]\n\t")             \
  IBBE_REDC_ROUND_("%[t1]", "%[t2]", "%[t3]",        \
                   "%[t4]",                          \
                   "addq %%rbx, %[t5]\n\t"           \
                   "adcq $0, %[t6]\n\t"              \
                   "adcq $0, %[t7]\n\t"              \
                   "adcq $0, %[t8]\n\t")             \
  IBBE_REDC_ROUND_("%[t2]", "%[t3]", "%[t4]",        \
                   "%[t5]",                          \
                   "addq %%rbx, %[t6]\n\t"           \
                   "adcq $0, %[t7]\n\t"              \
                   "adcq $0, %[t8]\n\t")             \
  IBBE_REDC_ROUND_("%[t3]", "%[t4]", "%[t5]",        \
                   "%[t6]",                          \
                   "addq %%rbx, %[t7]\n\t"           \
                   "adcq $0, %[t8]\n\t")

/// Montgomery reduction of an arbitrary 512-bit t (the lazy-reduction entry
/// point). Final correction in C (up to ~5 subtractions; typically 0-1).
inline void redc_accel(std::uint64_t out[4], const std::uint64_t t_in[8],
                       const std::uint64_t n[4], std::uint64_t n0inv) {
  std::uint64_t t0 = t_in[0], t1 = t_in[1], t2 = t_in[2], t3 = t_in[3];
  std::uint64_t t4 = t_in[4], t5 = t_in[5], t6 = t_in[6], t7 = t_in[7];
  std::uint64_t t8 = 0;
  __asm__(IBBE_REDC_BODY_
          : [t0] "+&r"(t0), [t1] "+&r"(t1), [t2] "+&r"(t2), [t3] "+&r"(t3),
            [t4] "+&r"(t4), [t5] "+&r"(t5), [t6] "+&r"(t6), [t7] "+&r"(t7),
            [t8] "+&r"(t8)
          : [n] "r"(n), [n0inv] "m"(n0inv)
          : "rax", "rbx", "rdx", "cc", "memory");
  std::uint64_t r[4] = {t4, t5, t6, t7};
  detail::redc_correct(r, t8, n);
  for (int i = 0; i < 4; ++i) out[i] = r[i];
}

/// Fused Montgomery multiply of reduced operands: the product is < n * 2^256,
/// so the REDC estimate is < 2n and a single branchless conditional
/// subtraction (SBB across the limbs plus the carry bit, CMOV select)
/// canonicalizes it. The product stays in the t0..t7 registers between the
/// two asm blocks.
inline void mont_mul_accel(std::uint64_t out[4], const std::uint64_t a[4],
                           const std::uint64_t b[4], const std::uint64_t n[4],
                           std::uint64_t n0inv) {
  std::uint64_t t0, t1, t2, t3, t4, t5, t6, t7;
  IBBE_MUL4_BODY_;
  std::uint64_t t8 = 0;
  __asm__(IBBE_REDC_BODY_
          // Branchless conditional subtract: CF after the chained SBB
          // (including the t8 carry bit) is set iff the value is < n.
          "movq %[t4], %%rax\n\t"
          "movq %[t5], %%rbx\n\t"
          "movq %[t6], %%rdx\n\t"
          "movq %[t7], %[t0]\n\t"
          "subq 0(%[n]), %%rax\n\t"
          "sbbq 8(%[n]), %%rbx\n\t"
          "sbbq 16(%[n]), %%rdx\n\t"
          "sbbq 24(%[n]), %[t0]\n\t"
          "sbbq $0, %[t8]\n\t"
          "cmovncq %%rax, %[t4]\n\t"
          "cmovncq %%rbx, %[t5]\n\t"
          "cmovncq %%rdx, %[t6]\n\t"
          "cmovncq %[t0], %[t7]\n\t"
          : [t0] "+&r"(t0), [t1] "+&r"(t1), [t2] "+&r"(t2), [t3] "+&r"(t3),
            [t4] "+&r"(t4), [t5] "+&r"(t5), [t6] "+&r"(t6), [t7] "+&r"(t7),
            [t8] "+&r"(t8)
          : [n] "r"(n), [n0inv] "m"(n0inv)
          : "rax", "rbx", "rdx", "cc", "memory");
  out[0] = t4;
  out[1] = t5;
  out[2] = t6;
  out[3] = t7;
}

#undef IBBE_REDC_BODY_
#undef IBBE_REDC_ROUND_
#undef IBBE_MUL4_BODY_

#endif  // IBBE_HAVE_MULX_ASM

/// The single runtime dispatch point for the full 256x256 -> 512 product —
/// both `bigint::mul_wide` and `MontgomeryCtx::mul_wide` route through here,
/// so a backend change cannot leave the two entry points disagreeing. The
/// dispatch result is cached in a local static: this runs 27 times per lazy
/// Fp6 multiplication, too hot for a cross-TU accelerated() call each time.
inline void mul4(std::uint64_t out[8], const std::uint64_t a[4],
                 const std::uint64_t b[4]) {
#if IBBE_HAVE_MULX_ASM
  static const bool use_accel = accelerated();
  if (use_accel) {
    mul4_accel(out, a, b);
    return;
  }
#endif
  mul4_portable(out, a, b);
}

}  // namespace ibbe::bigint::backend
