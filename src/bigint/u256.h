// Fixed-width 256-bit unsigned integers.
//
// This is the word size of every prime field in the project (BN254 base and
// scalar fields, P-256 base and order), so the hot-path arithmetic lives on a
// flat 4x64 representation with no allocation. Anything wider or variable
// width (setup-time constants, final-exponentiation exponents) uses BigUInt.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace ibbe::bigint {

/// 256-bit unsigned integer, little-endian limbs.
struct U256 {
  std::array<std::uint64_t, 4> limb{0, 0, 0, 0};

  static constexpr U256 zero() { return U256{}; }
  static constexpr U256 one() { return U256{{1, 0, 0, 0}}; }
  static constexpr U256 from_u64(std::uint64_t v) { return U256{{v, 0, 0, 0}}; }

  /// Parses big-endian hex (optionally "0x"-prefixed, at most 64 digits).
  static U256 from_hex(std::string_view hex);
  /// Big-endian byte parsing; input must be exactly 32 bytes.
  static U256 from_be_bytes(std::span<const std::uint8_t> bytes);

  [[nodiscard]] std::string to_hex() const;
  [[nodiscard]] std::array<std::uint8_t, 32> to_be_bytes() const;

  [[nodiscard]] bool is_zero() const {
    return (limb[0] | limb[1] | limb[2] | limb[3]) == 0;
  }
  [[nodiscard]] bool bit(unsigned i) const {
    return (limb[i / 64] >> (i % 64)) & 1;
  }
  /// Number of significant bits (0 for zero).
  [[nodiscard]] unsigned bit_length() const;
  [[nodiscard]] bool is_odd() const { return limb[0] & 1; }

  friend bool operator==(const U256&, const U256&) = default;
};

/// -1 / 0 / +1 three-way comparison.
int cmp(const U256& a, const U256& b);
inline bool operator<(const U256& a, const U256& b) { return cmp(a, b) < 0; }

/// out = a + b, returns the carry bit.
std::uint64_t add_with_carry(const U256& a, const U256& b, U256& out);
/// out = a - b, returns the borrow bit.
std::uint64_t sub_with_borrow(const U256& a, const U256& b, U256& out);

/// Full 256x256 -> 512-bit product (little-endian 8 limbs).
std::array<std::uint64_t, 8> mul_wide(const U256& a, const U256& b);

/// a mod m by binary reduction; m must be non-zero. Setup-path helper.
U256 mod(const U256& a, const U256& m);

}  // namespace ibbe::bigint
