#include "bigint/biguint.h"

#include <algorithm>
#include <stdexcept>

#include "util/hex.h"

namespace ibbe::bigint {

using u128 = unsigned __int128;

BigUInt::BigUInt(std::uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

void BigUInt::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUInt BigUInt::from_hex(std::string_view hex) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
  if (hex.empty()) throw std::invalid_argument("BigUInt::from_hex: empty");
  // Pad to a whole number of bytes.
  std::string padded;
  if (hex.size() % 2 != 0) padded.push_back('0');
  padded.append(hex);
  return from_be_bytes(util::from_hex(padded));
}

BigUInt BigUInt::from_be_bytes(std::span<const std::uint8_t> bytes) {
  BigUInt out;
  for (std::uint8_t b : bytes) {
    out = (out << 8) + BigUInt(b);
  }
  return out;
}

BigUInt BigUInt::from_u256(const U256& v) {
  BigUInt out;
  out.limbs_.assign(v.limb.begin(), v.limb.end());
  out.normalize();
  return out;
}

U256 BigUInt::to_u256() const {
  if (limbs_.size() > 4) throw std::overflow_error("BigUInt::to_u256: too wide");
  U256 out;
  for (std::size_t i = 0; i < limbs_.size(); ++i) out.limb[i] = limbs_[i];
  return out;
}

std::string BigUInt::to_hex() const {
  if (is_zero()) return "0";
  auto bytes = to_be_bytes();
  std::string hex = util::to_hex(bytes);
  auto first = hex.find_first_not_of('0');
  return hex.substr(first);
}

std::string BigUInt::to_dec() const {
  if (is_zero()) return "0";
  std::string digits;
  BigUInt ten(10);
  BigUInt cur = *this;
  while (!cur.is_zero()) {
    auto [q, r] = divmod(cur, ten);
    digits.push_back(static_cast<char>('0' + (r.is_zero() ? 0 : r.limbs_[0])));
    cur = std::move(q);
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

util::Bytes BigUInt::to_be_bytes() const {
  util::Bytes out;
  if (is_zero()) {
    out.push_back(0);
    return out;
  }
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    for (int shift = 56; shift >= 0; shift -= 8) {
      out.push_back(static_cast<std::uint8_t>(*it >> shift));
    }
  }
  // Strip leading zero bytes.
  auto first = std::find_if(out.begin(), out.end(), [](std::uint8_t b) { return b != 0; });
  out.erase(out.begin(), first);
  return out;
}

unsigned BigUInt::bit_length() const {
  if (is_zero()) return 0;
  return static_cast<unsigned>(64 * (limbs_.size() - 1) + 64 -
                               static_cast<unsigned>(__builtin_clzll(limbs_.back())));
}

bool BigUInt::bit(unsigned i) const {
  std::size_t word = i / 64;
  if (word >= limbs_.size()) return false;
  return (limbs_[word] >> (i % 64)) & 1;
}

std::strong_ordering operator<=>(const BigUInt& a, const BigUInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() <=> b.limbs_.size();
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] <=> b.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigUInt operator+(const BigUInt& a, const BigUInt& b) {
  BigUInt out;
  std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  u128 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    u128 s = carry;
    if (i < a.limbs_.size()) s += a.limbs_[i];
    if (i < b.limbs_.size()) s += b.limbs_[i];
    out.limbs_[i] = static_cast<std::uint64_t>(s);
    carry = s >> 64;
  }
  out.limbs_[n] = static_cast<std::uint64_t>(carry);
  out.normalize();
  return out;
}

BigUInt operator-(const BigUInt& a, const BigUInt& b) {
  if (a < b) throw std::underflow_error("BigUInt operator-: negative result");
  BigUInt out;
  out.limbs_.resize(a.limbs_.size(), 0);
  u128 borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    u128 d = static_cast<u128>(a.limbs_[i]) - (i < b.limbs_.size() ? b.limbs_[i] : 0) -
             borrow;
    out.limbs_[i] = static_cast<std::uint64_t>(d);
    borrow = (d >> 64) & 1;
  }
  out.normalize();
  return out;
}

BigUInt operator*(const BigUInt& a, const BigUInt& b) {
  if (a.is_zero() || b.is_zero()) return BigUInt{};
  BigUInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      u128 cur = static_cast<u128>(a.limbs_[i]) * b.limbs_[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out.limbs_[i + b.limbs_.size()] += carry;
  }
  out.normalize();
  return out;
}

BigUInt operator<<(const BigUInt& a, unsigned shift) {
  if (a.is_zero()) return a;
  unsigned limb_shift = shift / 64;
  unsigned bit_shift = shift % 64;
  BigUInt out;
  out.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= bit_shift ? a.limbs_[i] << bit_shift : a.limbs_[i];
    if (bit_shift) out.limbs_[i + limb_shift + 1] |= a.limbs_[i] >> (64 - bit_shift);
  }
  out.normalize();
  return out;
}

BigUInt operator>>(const BigUInt& a, unsigned shift) {
  unsigned limb_shift = shift / 64;
  unsigned bit_shift = shift % 64;
  if (limb_shift >= a.limbs_.size()) return BigUInt{};
  BigUInt out;
  out.limbs_.assign(a.limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = bit_shift ? a.limbs_[i + limb_shift] >> bit_shift
                              : a.limbs_[i + limb_shift];
    if (bit_shift && i + limb_shift + 1 < a.limbs_.size()) {
      out.limbs_[i] |= a.limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  out.normalize();
  return out;
}

std::pair<BigUInt, BigUInt> BigUInt::divmod(const BigUInt& a, const BigUInt& b) {
  if (b.is_zero()) throw std::domain_error("BigUInt divmod: division by zero");
  if (a < b) return {BigUInt{}, a};
  // Binary long division: clear and fast enough for setup-time operands.
  unsigned shift = a.bit_length() - b.bit_length();
  BigUInt remainder = a;
  BigUInt quotient;
  quotient.limbs_.assign(shift / 64 + 1, 0);
  BigUInt divisor = b << shift;
  for (unsigned s = shift + 1; s-- > 0;) {
    if (remainder >= divisor) {
      remainder = remainder - divisor;
      quotient.limbs_[s / 64] |= std::uint64_t{1} << (s % 64);
    }
    divisor = divisor >> 1;
  }
  quotient.normalize();
  return {std::move(quotient), std::move(remainder)};
}

BigUInt BigUInt::pow_mod(const BigUInt& base, const BigUInt& exp, const BigUInt& m) {
  if (m.is_zero()) throw std::domain_error("BigUInt pow_mod: zero modulus");
  BigUInt result(1);
  result = result % m;
  BigUInt b = base % m;
  for (unsigned i = exp.bit_length(); i-- > 0;) {
    result = (result * result) % m;
    if (exp.bit(i)) result = (result * b) % m;
  }
  return result;
}

BigUInt BigUInt::inv_mod(const BigUInt& a, const BigUInt& m) {
  // Extended Euclid on non-negative values, tracking coefficients of `a` only.
  // Invariants: r0 = s0*a (mod m), r1 = s1*a (mod m), with signs carried apart.
  BigUInt r0 = m, r1 = a % m;
  BigUInt s0(0), s1(1);
  bool s0_neg = false, s1_neg = false;
  while (!r1.is_zero()) {
    auto [q, r2] = divmod(r0, r1);
    // s2 = s0 - q*s1 with explicit sign tracking.
    BigUInt qs1 = q * s1;
    BigUInt s2;
    bool s2_neg;
    if (s0_neg == s1_neg) {
      if (s0 >= qs1) {
        s2 = s0 - qs1;
        s2_neg = s0_neg;
      } else {
        s2 = qs1 - s0;
        s2_neg = !s0_neg;
      }
    } else {
      s2 = s0 + qs1;
      s2_neg = s0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    s0 = std::move(s1);
    s0_neg = s1_neg;
    s1 = std::move(s2);
    s1_neg = s2_neg;
  }
  if (!(r0 == BigUInt(1))) {
    throw std::domain_error("BigUInt inv_mod: not invertible");
  }
  BigUInt inv = s0 % m;
  if (s0_neg && !inv.is_zero()) inv = m - inv;
  return inv;
}

}  // namespace ibbe::bigint
