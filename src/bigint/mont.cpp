#include "bigint/mont.h"

#include <stdexcept>

namespace ibbe::bigint {

MontgomeryCtx::MontgomeryCtx(const U256& modulus) : n_(modulus) {
  if (!modulus.is_odd() || modulus.bit_length() < 2) {
    throw std::invalid_argument("MontgomeryCtx: modulus must be odd and > 2");
  }
  // n0inv = -n^-1 mod 2^64 by Newton iteration (doubles correct bits each
  // round; 6 rounds cover 64 bits starting from 1 correct bit... start at 3
  // bits with the standard trick x = n works since n odd).
  std::uint64_t n0 = n_.limb[0];
  std::uint64_t x = n0;  // correct to 3 bits for odd n0? (x*n0 ≡ 1 mod 8)
  for (int i = 0; i < 6; ++i) x *= 2 - n0 * x;
  n0inv_ = ~x + 1;  // negate mod 2^64

  // R = 2^256 mod n and R2 = 2^512 mod n via BigUInt (setup-time only).
  BigUInt n_big = BigUInt::from_u256(n_);
  r_ = ((BigUInt(1) << 256) % n_big).to_u256();
  r2_ = ((BigUInt(1) << 512) % n_big).to_u256();
  sub_with_borrow(n_, U256::from_u64(2), n_minus_2_);
  n_sq_ = mul_wide(n_, n_);

  // The asm REDC's per-round carry fold requires the top modulus limb to
  // leave one unit of headroom (see mont_backend.h); every prime in the
  // project does.
  accel_ = backend::accelerated() && n_.limb[3] <= ~std::uint64_t{1};
}

U256 MontgomeryCtx::add(const U256& a, const U256& b) const {
  U256 sum;
  std::uint64_t carry = add_with_carry(a, b, sum);
  if (carry || cmp(sum, n_) >= 0) {
    U256 tmp;
    sub_with_borrow(sum, n_, tmp);
    return tmp;
  }
  return sum;
}

U256 MontgomeryCtx::sub(const U256& a, const U256& b) const {
  U256 diff;
  std::uint64_t borrow = sub_with_borrow(a, b, diff);
  if (borrow) {
    U256 tmp;
    add_with_carry(diff, n_, tmp);
    return tmp;
  }
  return diff;
}

U256 MontgomeryCtx::neg(const U256& a) const {
  if (a.is_zero()) return a;
  U256 out;
  sub_with_borrow(n_, a, out);
  return out;
}

namespace {

/// 4-bit fixed-window ladder shared by both exponent types: ~bits/4 table
/// multiplications instead of the ~bits/2 of plain square-and-multiply. This
/// feeds every Fermat inversion in the field layer, so all Fp/Fr/P-256
/// inversions (and therefore every affine conversion) get the speedup.
template <typename Exp>
U256 pow_fixed_window(const MontgomeryCtx& ctx, const U256& base,
                      const Exp& exp) {
  unsigned bits = exp.bit_length();
  if (bits == 0) return ctx.one();
  U256 table[16];
  table[0] = ctx.one();
  for (int i = 1; i < 16; ++i) table[i] = ctx.mul(table[i - 1], base);

  auto window = [&](unsigned lo) {
    unsigned w = 0;
    for (unsigned j = 4; j-- > 0;) {
      w <<= 1;
      if (lo + j < bits && exp.bit(lo + j)) w |= 1;
    }
    return w;
  };

  unsigned i = ((bits + 3) / 4) * 4;
  i -= 4;
  U256 result = table[window(i)];
  while (i != 0) {
    i -= 4;
    result = ctx.sqr(ctx.sqr(ctx.sqr(ctx.sqr(result))));
    unsigned w = window(i);
    if (w != 0) result = ctx.mul(result, table[w]);
  }
  return result;
}

}  // namespace

U256 MontgomeryCtx::pow(const U256& base, const U256& exp) const {
  return pow_fixed_window(*this, base, exp);
}

U256 MontgomeryCtx::pow(const U256& base, const BigUInt& exp) const {
  return pow_fixed_window(*this, base, exp);
}

U256 MontgomeryCtx::inv(const U256& a) const {
  if (a.is_zero()) throw std::domain_error("MontgomeryCtx::inv: zero");
  return pow(a, n_minus_2_);
}

}  // namespace ibbe::bigint
