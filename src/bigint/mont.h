// Montgomery-form modular arithmetic for 256-bit odd moduli.
//
// One MontgomeryCtx exists per prime in the system (BN254 p and r, P-256 p
// and n). Residues are stored in Montgomery form; the field layer (src/field)
// wraps a context into a typed element class.
//
// Two APIs coexist:
//   * `mul`/`sqr` — fused multiply-and-reduce, the classical entry point.
//   * `mul_wide` + `redc` — the same operation split into its halves. The
//     lazy-reduction tower (field/lazy.h) accumulates several 512-bit
//     unreduced products (with `p_squared()` offsets keeping subtractions
//     non-negative) and pays ONE reduction per output coefficient instead of
//     one per product. `redc` accepts any value < 2^512 and returns the
//     canonical representative.
//
// Both halves dispatch at runtime between the portable C++ implementation
// and the x86-64 MULX/ADCX/ADOX backend (bigint/mont_backend.h); results are
// bit-identical either way.
#pragma once

#include "bigint/biguint.h"
#include "bigint/mont_backend.h"
#include "bigint/u256.h"
#include "bigint/u512.h"

namespace ibbe::bigint {

class MontgomeryCtx {
 public:
  /// `modulus` must be odd and > 2. Constants (R, R^2, -N^-1 mod 2^64, N^2)
  /// are derived here once.
  explicit MontgomeryCtx(const U256& modulus);

  [[nodiscard]] const U256& modulus() const { return n_; }
  /// 1 in Montgomery form (R mod N).
  [[nodiscard]] const U256& one() const { return r_; }
  /// N^2 as a 512-bit value: the offset the lazy-reduction layer adds before
  /// subtracting an unreduced product (any multiple of N is invisible to
  /// `redc` mod N).
  [[nodiscard]] const U512& p_squared() const { return n_sq_; }

  [[nodiscard]] U256 to_mont(const U256& a) const { return mul(a, r2_); }
  [[nodiscard]] U256 from_mont(const U256& a) const { return mul(a, U256::one()); }

  /// Montgomery product: out = a*b*R^-1 mod N. Aliasing out with a and/or b
  /// is fine (the backends read operands before the first store to out) —
  /// multiplication chains use this to update in place without a copy.
  void mul_into(const U256& a, const U256& b, U256& out) const {
#if IBBE_HAVE_MULX_ASM
    if (accel_) {
      backend::mont_mul_accel(out.limb.data(), a.limb.data(), b.limb.data(),
                              n_.limb.data(), n0inv_);
      return;
    }
#endif
    backend::mont_mul_portable(out.limb.data(), a.limb.data(), b.limb.data(),
                               n_.limb.data(), n0inv_);
  }
  [[nodiscard]] U256 mul(const U256& a, const U256& b) const {
    U256 out;
    mul_into(a, b, out);
    return out;
  }
  [[nodiscard]] U256 sqr(const U256& a) const { return mul(a, a); }

  /// Full 512-bit product of two residues (no reduction). Modulus-free; a
  /// static member so call sites read as part of this API.
  [[nodiscard]] static U512 mul_wide(const U256& a, const U256& b) {
    U512 out;
    backend::mul4(out.limb.data(), a.limb.data(), b.limb.data());
    return out;
  }

  /// Montgomery reduction of ANY t < 2^512: t*R^-1 mod N, canonical.
  [[nodiscard]] U256 redc(const U512& t) const {
    U256 out;
#if IBBE_HAVE_MULX_ASM
    if (accel_) {
      backend::redc_accel(out.limb.data(), t.limb.data(), n_.limb.data(),
                          n0inv_);
      return out;
    }
#endif
    backend::redc_portable(out.limb.data(), t.limb.data(), n_.limb.data(),
                           n0inv_);
    return out;
  }

  /// Plain modular add/sub/neg on residues (Montgomery form is closed under
  /// these).
  [[nodiscard]] U256 add(const U256& a, const U256& b) const;
  [[nodiscard]] U256 sub(const U256& a, const U256& b) const;
  [[nodiscard]] U256 neg(const U256& a) const;
  [[nodiscard]] U256 dbl(const U256& a) const { return add(a, a); }

  /// base^exp with base in Montgomery form; result in Montgomery form.
  /// 4-bit fixed-window ladder (this backs every Fermat inversion).
  [[nodiscard]] U256 pow(const U256& base, const U256& exp) const;
  [[nodiscard]] U256 pow(const U256& base, const BigUInt& exp) const;

  /// Inverse of a non-zero residue (Fermat: a^(N-2)); modulus must be prime.
  [[nodiscard]] U256 inv(const U256& a) const;

 private:
  U256 n_;             // modulus
  U256 r_;             // 2^256 mod n
  U256 r2_;            // 2^512 mod n
  U512 n_sq_;          // n^2 (lazy-reduction offset)
  std::uint64_t n0inv_ = 0;  // -n^-1 mod 2^64
  U256 n_minus_2_;     // exponent for Fermat inversion
  bool accel_ = false;  // MULX/ADX backend usable for this modulus
};

}  // namespace ibbe::bigint
