// Montgomery-form modular arithmetic for 256-bit odd moduli.
//
// One MontgomeryCtx exists per prime in the system (BN254 p and r, P-256 p
// and n). Residues are stored in Montgomery form; the field layer (src/field)
// wraps a context into a typed element class.
#pragma once

#include "bigint/biguint.h"
#include "bigint/u256.h"

namespace ibbe::bigint {

class MontgomeryCtx {
 public:
  /// `modulus` must be odd and > 2. Constants (R, R^2, -N^-1 mod 2^64) are
  /// derived here once.
  explicit MontgomeryCtx(const U256& modulus);

  [[nodiscard]] const U256& modulus() const { return n_; }
  /// 1 in Montgomery form (R mod N).
  [[nodiscard]] const U256& one() const { return r_; }

  [[nodiscard]] U256 to_mont(const U256& a) const { return mul(a, r2_); }
  [[nodiscard]] U256 from_mont(const U256& a) const { return mul(a, U256::one()); }

  /// Montgomery product: a*b*R^-1 mod N (CIOS).
  [[nodiscard]] U256 mul(const U256& a, const U256& b) const;
  [[nodiscard]] U256 sqr(const U256& a) const { return mul(a, a); }

  /// Plain modular add/sub/neg on residues (Montgomery form is closed under
  /// these).
  [[nodiscard]] U256 add(const U256& a, const U256& b) const;
  [[nodiscard]] U256 sub(const U256& a, const U256& b) const;
  [[nodiscard]] U256 neg(const U256& a) const;
  [[nodiscard]] U256 dbl(const U256& a) const { return add(a, a); }

  /// base^exp with base in Montgomery form; result in Montgomery form.
  /// 4-bit fixed-window ladder (this backs every Fermat inversion).
  [[nodiscard]] U256 pow(const U256& base, const U256& exp) const;
  [[nodiscard]] U256 pow(const U256& base, const BigUInt& exp) const;

  /// Inverse of a non-zero residue (Fermat: a^(N-2)); modulus must be prime.
  [[nodiscard]] U256 inv(const U256& a) const;

 private:
  U256 n_;             // modulus
  U256 r_;             // 2^256 mod n
  U256 r2_;            // 2^512 mod n
  std::uint64_t n0inv_ = 0;  // -n^-1 mod 2^64
  U256 n_minus_2_;     // exponent for Fermat inversion
};

}  // namespace ibbe::bigint
