#include "bigint/u256.h"

#include <stdexcept>

#include "bigint/mont_backend.h"
#include "util/hex.h"

namespace ibbe::bigint {

using u128 = unsigned __int128;

U256 U256::from_hex(std::string_view hex) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
  if (hex.empty() || hex.size() > 64) {
    throw std::invalid_argument("U256::from_hex: need 1..64 hex digits");
  }
  std::string padded(64 - hex.size(), '0');
  padded.append(hex);
  auto bytes = util::from_hex(padded);
  return from_be_bytes(bytes);
}

U256 U256::from_be_bytes(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != 32) {
    throw std::invalid_argument("U256::from_be_bytes: need exactly 32 bytes");
  }
  U256 out;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t v = 0;
    for (int j = 0; j < 8; ++j) v = v << 8 | bytes[static_cast<std::size_t>(8 * i + j)];
    out.limb[static_cast<std::size_t>(3 - i)] = v;
  }
  return out;
}

std::string U256::to_hex() const {
  auto bytes = to_be_bytes();
  return util::to_hex(bytes);
}

std::array<std::uint8_t, 32> U256::to_be_bytes() const {
  std::array<std::uint8_t, 32> out{};
  for (int i = 0; i < 4; ++i) {
    std::uint64_t v = limb[static_cast<std::size_t>(3 - i)];
    for (int j = 0; j < 8; ++j) {
      out[static_cast<std::size_t>(8 * i + j)] =
          static_cast<std::uint8_t>(v >> (56 - 8 * j));
    }
  }
  return out;
}

unsigned U256::bit_length() const {
  for (int i = 3; i >= 0; --i) {
    if (limb[static_cast<std::size_t>(i)] != 0) {
      return static_cast<unsigned>(64 * i + 64 -
                                   __builtin_clzll(limb[static_cast<std::size_t>(i)]));
    }
  }
  return 0;
}

int cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    auto ai = a.limb[static_cast<std::size_t>(i)];
    auto bi = b.limb[static_cast<std::size_t>(i)];
    if (ai != bi) return ai < bi ? -1 : 1;
  }
  return 0;
}

std::uint64_t add_with_carry(const U256& a, const U256& b, U256& out) {
  u128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    u128 s = static_cast<u128>(a.limb[static_cast<std::size_t>(i)]) +
             b.limb[static_cast<std::size_t>(i)] + carry;
    out.limb[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(s);
    carry = s >> 64;
  }
  return static_cast<std::uint64_t>(carry);
}

std::uint64_t sub_with_borrow(const U256& a, const U256& b, U256& out) {
  u128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    u128 d = static_cast<u128>(a.limb[static_cast<std::size_t>(i)]) -
             b.limb[static_cast<std::size_t>(i)] - borrow;
    out.limb[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(d);
    borrow = (d >> 64) & 1;
  }
  return static_cast<std::uint64_t>(borrow);
}

std::array<std::uint64_t, 8> mul_wide(const U256& a, const U256& b) {
  std::array<std::uint64_t, 8> t{};
  backend::mul4(t.data(), a.limb.data(), b.limb.data());
  return t;
}

U256 mod(const U256& a, const U256& m) {
  if (m.is_zero()) throw std::invalid_argument("U256 mod: zero modulus");
  if (cmp(a, m) < 0) return a;
  // Binary reduction: subtract shifted copies of m from high bits downward.
  U256 r = a;
  unsigned shift = r.bit_length() - m.bit_length();
  while (true) {
    // mm = m << shift, computed limb-wise each round (shift <= 255).
    U256 mm{};
    unsigned limb_shift = shift / 64;
    unsigned bit_shift = shift % 64;
    for (int i = 3; i >= static_cast<int>(limb_shift); --i) {
      std::uint64_t lo = m.limb[static_cast<std::size_t>(i) - limb_shift] << bit_shift;
      std::uint64_t hi =
          (bit_shift && static_cast<std::size_t>(i) > limb_shift)
              ? m.limb[static_cast<std::size_t>(i) - limb_shift - 1] >> (64 - bit_shift)
              : 0;
    mm.limb[static_cast<std::size_t>(i)] = lo | hi;
    }
    if (cmp(r, mm) >= 0) {
      U256 tmp;
      sub_with_borrow(r, mm, tmp);
      r = tmp;
    }
    if (shift == 0) break;
    --shift;
  }
  return r;
}

}  // namespace ibbe::bigint
