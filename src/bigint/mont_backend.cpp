#include "bigint/mont_backend.h"

#include <cstdlib>
#include <cstring>

namespace ibbe::bigint::backend {

namespace {

enum class Choice {
  accel,
  portable_env,      // IBBE_FORCE_PORTABLE_MUL set at runtime
  portable_cpu,      // CPU lacks BMI2 or ADX
  portable_compile,  // asm path not compiled in
};

Choice resolve() {
#if IBBE_HAVE_MULX_ASM
  const char* force = std::getenv("IBBE_FORCE_PORTABLE_MUL");
  if (force != nullptr && *force != '\0' && std::strcmp(force, "0") != 0) {
    return Choice::portable_env;
  }
  if (__builtin_cpu_supports("bmi2") && __builtin_cpu_supports("adx")) {
    return Choice::accel;
  }
  return Choice::portable_cpu;
#else
  return Choice::portable_compile;
#endif
}

Choice choice() {
  static const Choice c = resolve();
  return c;
}

}  // namespace

bool accelerated() { return choice() == Choice::accel; }

const char* name() {
  switch (choice()) {
    case Choice::accel:
      return "mulx+adx (x86-64 BMI2/ADX carry chains)";
    case Choice::portable_env:
      return "portable CIOS (forced by IBBE_FORCE_PORTABLE_MUL)";
    case Choice::portable_cpu:
      return "portable CIOS (CPU lacks BMI2/ADX)";
    case Choice::portable_compile:
      return "portable CIOS (accelerated path not compiled in)";
  }
  return "portable CIOS";
}

}  // namespace ibbe::bigint::backend
