// Shared toolkit for the endomorphism scalar decompositions (ec/glv.cpp for
// G1/G2, pairing/gt_exp.cpp for Gt):
//
//  * minimal signed 512-bit arithmetic on 8x64 limb arrays — the per-scalar
//    Babai rounding works on mul_wide products, so the hot path never
//    allocates;
//  * sign-magnitude BigUInt helpers (SBig) for the derivation (init) paths:
//    lattice-basis construction, cofactors, and the self-checks.
#pragma once

#include <array>
#include <cstdint>

#include "bigint/biguint.h"
#include "bigint/u256.h"

namespace ibbe::bigint {

using Limbs8 = std::array<std::uint64_t, 8>;

inline void add_bit_512(Limbs8& a, unsigned bit) {
  unsigned idx = bit / 64;
  std::uint64_t add = std::uint64_t{1} << (bit % 64);
  for (unsigned i = idx; i < 8 && add; ++i) {
    std::uint64_t s = a[i] + add;
    add = s < a[i] ? 1 : 0;
    a[i] = s;
  }
}

/// floor((a + 2^(shift-1)) / 2^shift) for products that fit well below
/// 2^(shift+256): round-to-nearest shift extraction.
inline U256 round_shift_512(Limbs8 a, unsigned shift) {
  add_bit_512(a, shift - 1);
  U256 out;
  unsigned idx = shift / 64, off = shift % 64;
  for (unsigned i = 0; i < 4; ++i) {
    std::uint64_t lo = idx + i < 8 ? a[idx + i] : 0;
    std::uint64_t hi = (off && idx + i + 1 < 8) ? a[idx + i + 1] : 0;
    out.limb[i] = off ? (lo >> off) | (hi << (64 - off)) : lo;
  }
  return out;
}

inline int cmp_512(const Limbs8& a, const Limbs8& b) {
  for (unsigned i = 8; i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

inline Limbs8 add_512(const Limbs8& a, const Limbs8& b) {
  Limbs8 out;
  unsigned __int128 carry = 0;
  for (unsigned i = 0; i < 8; ++i) {
    carry += a[i];
    carry += b[i];
    out[i] = static_cast<std::uint64_t>(carry);
    carry >>= 64;
  }
  return out;
}

/// a - b; requires a >= b.
inline Limbs8 sub_512(const Limbs8& a, const Limbs8& b) {
  Limbs8 out;
  std::uint64_t borrow = 0;
  for (unsigned i = 0; i < 8; ++i) {
    std::uint64_t bi = b[i] + borrow;
    borrow = (bi < b[i]) || (a[i] < bi) ? 1 : 0;
    out[i] = a[i] - bi;
  }
  return out;
}

/// Sign-magnitude 512-bit integer (zero canonicalizes to non-negative).
struct S512 {
  Limbs8 mag{};
  bool neg = false;

  [[nodiscard]] bool is_zero() const {
    for (auto l : mag) {
      if (l) return false;
    }
    return true;
  }
};

inline S512 signed_add(const S512& a, const S512& b) {
  if (a.neg == b.neg) return {add_512(a.mag, b.mag), a.neg};
  int c = cmp_512(a.mag, b.mag);
  if (c == 0) return {};
  if (c > 0) return {sub_512(a.mag, b.mag), a.neg};
  return {sub_512(b.mag, a.mag), b.neg};
}

inline S512 signed_sub(const S512& a, const S512& b) {
  return signed_add(a, {b.mag, !b.neg});
}

inline S512 s512_from_u256(const U256& v, bool neg = false) {
  S512 out;
  for (unsigned i = 0; i < 4; ++i) out.mag[i] = v.limb[i];
  out.neg = neg;
  return out;
}

/// Magnitude as U256; false if it does not fit in 256 bits.
inline bool s512_to_u256(const S512& v, U256& out) {
  for (unsigned i = 4; i < 8; ++i) {
    if (v.mag[i]) return false;
  }
  for (unsigned i = 0; i < 4; ++i) out.limb[i] = v.mag[i];
  return true;
}

/// Sign-magnitude arbitrary-precision integer for init-time derivations
/// (zero canonicalizes to non-negative through the helpers below).
struct SBig {
  BigUInt v;
  bool neg = false;

  [[nodiscard]] bool is_zero() const { return v.is_zero(); }
};

inline SBig sbig_add(const SBig& a, const SBig& b) {
  if (a.neg == b.neg) return {a.v + b.v, a.neg};
  if (a.v >= b.v) return {a.v - b.v, a.neg};
  return {b.v - a.v, b.neg};
}

inline SBig sbig_sub(const SBig& a, const SBig& b) {
  return sbig_add(a, {b.v, !b.neg});
}

inline SBig sbig_mul(const SBig& a, const SBig& b) {
  return {a.v * b.v, a.neg != b.neg};
}

/// Signed value mod n in [0, n).
inline BigUInt sbig_mod(const SBig& a, const BigUInt& n) {
  BigUInt m = a.v % n;
  if (a.neg && !m.is_zero()) m = n - m;
  return m;
}

}  // namespace ibbe::bigint
