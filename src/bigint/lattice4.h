// Four-dimensional lattice scalar decomposition (shared Babai machinery).
//
// Both degree-4 endomorphism engines in this project — the Gt Frobenius
// exponentiation (pairing/gt_exp.*) and the 4-dim GLS split for G2
// (ec/glv.*) — decompose a scalar k against the SAME kind of object: an
// LLL-reduced basis of the lattice
//
//   L = { (a0, a1, a2, a3) : a0 + a1 l + a2 l^2 + a3 l^3 = 0 (mod n) },
//
// where l is the endomorphism eigenvalue (6u^2 for both of them — psi on G2
// and the p-power Frobenius on Gt share it) and n the group order r. This
// header owns that machinery once: basis verification, cofactor /
// determinant computation, the Barrett-style rounding reciprocals, and the
// per-scalar Babai round-off over the signed 512-bit toolkit of int512.h
// (no allocation on the hot path).
//
// The eigenvalue-specific facts — that psi or Frobenius really act as [l] —
// remain with the callers; everything a pure-integer check can catch is
// verified in the constructor, which throws std::logic_error on any
// transcription or convention error instead of corrupting results.
#pragma once

#include <array>
#include <cstdint>

#include "bigint/biguint.h"
#include "bigint/u256.h"

namespace ibbe::bigint {

/// Four-dimensional decomposition k = sum_i (-1)^neg[i] k[i] l^i (mod n).
struct Decomp4 {
  std::array<U256, 4> k;
  std::array<bool, 4> neg;
};

class Lattice4 {
 public:
  /// One signed basis entry; magnitudes fit a single limb (the BN bases are
  /// linear in the 63-bit curve parameter u).
  struct Entry {
    std::uint64_t mag;
    bool neg;
  };
  using Basis = std::array<std::array<Entry, 4>, 4>;

  /// Derives the Babai rounding reciprocals from (n, lambda, basis) and
  /// verifies at construction: every row lies in the lattice, |det| = n
  /// (an index-n sublattice, i.e. the quotient is exactly Z/n), and a few
  /// sample scalars decompose back to themselves mod n with every
  /// sub-scalar at most `max_sub_bits` bits.
  Lattice4(const BigUInt& n, const BigUInt& lambda, const Basis& basis,
           unsigned max_sub_bits);

  /// Babai round-off of (k, 0, 0, 0) against the basis; requires k < n.
  /// Every |k[i]| is bounded by half the l1-norm of the basis columns
  /// (~2^65 for the BN psi basis; self-checked <= max_sub_bits).
  [[nodiscard]] Decomp4 decompose(const U256& k) const;

  /// The eigenvalue l the basis was built for (reduced, < n).
  [[nodiscard]] const U256& lambda() const { return lambda_; }
  /// The constructor-verified bound on decomposed sub-scalar lengths.
  [[nodiscard]] unsigned max_sub_bits() const { return max_sub_bits_; }

 private:
  U256 lambda_;
  Basis basis_;
  // ghat_[j] = round(2^256 |C_j0| / n) with C_j0 the (j,0) cofactor of the
  // basis matrix. The Babai coefficient is c_j = k C_j0 / det; csign_[j]
  // carries its sign for k >= 0 (cofactor sign flipped when det = -n).
  std::array<U256, 4> ghat_;
  std::array<bool, 4> csign_;
  unsigned max_sub_bits_;
};

}  // namespace ibbe::bigint
