#include "bigint/lattice4.h"

#include <stdexcept>

#include "bigint/int512.h"

namespace ibbe::bigint {

Lattice4::Lattice4(const BigUInt& n, const BigUInt& lambda, const Basis& basis,
                   unsigned max_sub_bits)
    : basis_(basis), max_sub_bits_(max_sub_bits) {
  lambda_ = (lambda % n).to_u256();

  // Every row must be a lattice vector: sum_i b_ji lambda^i = 0 (mod n).
  const BigUInt lam = BigUInt::from_u256(lambda_);
  std::array<BigUInt, 4> lam_pow{BigUInt(1), lam, lam * lam % n,
                                 lam * lam % n * lam % n};
  for (const auto& row : basis_) {
    SBig acc;
    for (int i = 0; i < 4; ++i) {
      acc = sbig_add(acc, sbig_mul({BigUInt(row[static_cast<std::size_t>(i)].mag),
                                    row[static_cast<std::size_t>(i)].neg},
                                   {lam_pow[static_cast<std::size_t>(i)],
                                    false}));
    }
    if (!sbig_mod(acc, n).is_zero()) {
      throw std::logic_error("lattice4: basis row is not in the lattice");
    }
  }

  // Cofactors C_j0 (for the first column) and the determinant, by direct
  // 3x3 minor expansion over signed BigUInt.
  auto minor3 = [&](int drop_row) {
    std::array<std::array<SBig, 3>, 3> m;
    int rr = 0;
    for (int r_i = 0; r_i < 4; ++r_i) {
      if (r_i == drop_row) continue;
      for (int c_i = 1; c_i < 4; ++c_i) {
        m[static_cast<std::size_t>(rr)][static_cast<std::size_t>(c_i - 1)] =
            {BigUInt(basis_[static_cast<std::size_t>(r_i)]
                           [static_cast<std::size_t>(c_i)].mag),
             basis_[static_cast<std::size_t>(r_i)]
                   [static_cast<std::size_t>(c_i)].neg};
      }
      ++rr;
    }
    SBig det = sbig_sub(sbig_mul(m[0][0], sbig_sub(sbig_mul(m[1][1], m[2][2]),
                                                   sbig_mul(m[1][2], m[2][1]))),
                        sbig_mul(m[0][1], sbig_sub(sbig_mul(m[1][0], m[2][2]),
                                                   sbig_mul(m[1][2], m[2][0]))));
    return sbig_add(det,
                    sbig_mul(m[0][2], sbig_sub(sbig_mul(m[1][0], m[2][1]),
                                               sbig_mul(m[1][1], m[2][0]))));
  };

  std::array<SBig, 4> cof;
  SBig det;
  for (int j = 0; j < 4; ++j) {
    cof[static_cast<std::size_t>(j)] = minor3(j);
    if (j % 2 == 1) {  // (-1)^(j+0)
      cof[static_cast<std::size_t>(j)].neg =
          !cof[static_cast<std::size_t>(j)].neg;
    }
    // det = sum_j b_j0 C_j0
    det = sbig_add(det, sbig_mul({BigUInt(basis_[static_cast<std::size_t>(j)]
                                                [0].mag),
                                  basis_[static_cast<std::size_t>(j)][0].neg},
                                 cof[static_cast<std::size_t>(j)]));
  }
  if (det.v != n) {
    throw std::logic_error("lattice4: basis determinant is not +-n");
  }
  for (std::size_t j = 0; j < 4; ++j) {
    // ghat[j] = round(2^256 |C_j0| / n); c_j = k C_j0 / det, so its sign is
    // the cofactor sign when det = +n and the negated one when det = -n.
    auto [quo, rem] = BigUInt::divmod(cof[j].v << 256, n);
    if (rem + rem >= n) quo = quo + BigUInt(1);
    ghat_[j] = quo.to_u256();
    csign_[j] = det.neg ? !cof[j].neg : cof[j].neg;
  }

  // Integer end-to-end self-check: a few scalars must decompose back to
  // themselves mod n, with short sub-scalars.
  for (const U256& k :
       {U256::one(), U256::from_u64(0xdeadbeefcafef00dULL),
        bigint::mod(U256{{~0ull, ~0ull, ~0ull, ~0ull}}, n.to_u256())}) {
    Decomp4 d = decompose(k);
    SBig lhs;
    for (std::size_t i = 0; i < 4; ++i) {
      if (d.k[i].bit_length() > max_sub_bits_) {
        throw std::logic_error("lattice4: decomposition is not short");
      }
      lhs = sbig_add(lhs, sbig_mul({BigUInt::from_u256(d.k[i]), d.neg[i]},
                                   {lam_pow[i], false}));
    }
    if (sbig_mod(lhs, n) != BigUInt::from_u256(k)) {
      throw std::logic_error("lattice4: decomposition self-check failed");
    }
  }
}

Decomp4 Lattice4::decompose(const U256& k) const {
  // Babai round-off: c_j from the precomputed reciprocals (the 2^-256
  // Barrett slack is far below the half-integer rounding margin for
  // k < 2^254), then eps_i = k delta_i0 - sum_j c_j b_ji over signed
  // 512-bit limbs.
  std::array<U256, 4> c;
  for (std::size_t j = 0; j < 4; ++j) {
    c[j] = round_shift_512(mul_wide(k, ghat_[j]), 256);
  }
  Decomp4 d;
  for (std::size_t i = 0; i < 4; ++i) {
    S512 eps = i == 0 ? s512_from_u256(k) : S512{};
    for (std::size_t j = 0; j < 4; ++j) {
      const Entry& b = basis_[j][i];
      S512 term{mul_wide(c[j], U256::from_u64(b.mag)),
                // sign of -c_j * b_ji with sign(c_j) = csign_[j]
                !(csign_[j] != b.neg)};
      eps = signed_add(eps, term);
    }
    if (!s512_to_u256(eps, d.k[i])) {
      throw std::logic_error("lattice4: decomposition out of range");
    }
    d.neg[i] = eps.neg;
  }
  return d;
}

}  // namespace ibbe::bigint
