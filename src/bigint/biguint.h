// Arbitrary-precision unsigned integers.
//
// The paper's implementation ports GMP into the SGX enclave; this class is
// our self-contained substitute. It is used on setup paths only (Montgomery
// constant derivation, Frobenius exponents, the final-exponentiation hard
// part, test oracles), so clarity wins over speed: schoolbook multiplication
// and binary long division throughout.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bigint/u256.h"

namespace ibbe::bigint {

class BigUInt {
 public:
  BigUInt() = default;
  explicit BigUInt(std::uint64_t v);
  static BigUInt from_hex(std::string_view hex);
  static BigUInt from_u256(const U256& v);
  static BigUInt from_be_bytes(std::span<const std::uint8_t> bytes);

  [[nodiscard]] std::string to_hex() const;
  [[nodiscard]] std::string to_dec() const;
  /// Requires the value to fit in 256 bits.
  [[nodiscard]] U256 to_u256() const;
  [[nodiscard]] util::Bytes to_be_bytes() const;

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] unsigned bit_length() const;
  [[nodiscard]] bool bit(unsigned i) const;
  [[nodiscard]] bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }

  friend BigUInt operator+(const BigUInt& a, const BigUInt& b);
  /// Requires a >= b; throws std::underflow_error otherwise.
  friend BigUInt operator-(const BigUInt& a, const BigUInt& b);
  friend BigUInt operator*(const BigUInt& a, const BigUInt& b);
  friend BigUInt operator<<(const BigUInt& a, unsigned shift);
  friend BigUInt operator>>(const BigUInt& a, unsigned shift);

  /// (quotient, remainder) in one pass; divisor must be non-zero.
  static std::pair<BigUInt, BigUInt> divmod(const BigUInt& a, const BigUInt& b);
  friend BigUInt operator/(const BigUInt& a, const BigUInt& b) {
    return divmod(a, b).first;
  }
  friend BigUInt operator%(const BigUInt& a, const BigUInt& b) {
    return divmod(a, b).second;
  }

  /// (base^exp) mod m; test-oracle-grade square-and-multiply.
  static BigUInt pow_mod(const BigUInt& base, const BigUInt& exp, const BigUInt& m);
  /// Modular inverse via extended Euclid; throws if gcd(a, m) != 1.
  static BigUInt inv_mod(const BigUInt& a, const BigUInt& m);

  friend bool operator==(const BigUInt&, const BigUInt&) = default;
  friend std::strong_ordering operator<=>(const BigUInt& a, const BigUInt& b);

  [[nodiscard]] const std::vector<std::uint64_t>& limbs() const { return limbs_; }

 private:
  void normalize();

  // Little-endian limbs; empty vector represents zero.
  std::vector<std::uint64_t> limbs_;
};

}  // namespace ibbe::bigint
