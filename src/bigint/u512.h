// Fixed-width 512-bit unsigned integers: the unreduced-accumulator word of
// the lazy-reduction field tower.
//
// A U512 holds a full 256x256-bit product (or a bounded sum of such
// products) between a `mul_wide` and the Montgomery reduction that folds it
// back to 4 limbs (`MontgomeryCtx::redc`). Unlike `int512.h` (sign-magnitude
// helpers for the endomorphism lattice math), this type is unsigned and
// wrap-around: subtraction is two's-complement, and the *caller* is
// responsible for keeping every intermediate mathematically non-negative and
// below 2^512 (the field layer does this by adding p^2 offsets before
// subtracting and by tracking per-formula bounds; see field/lazy.h).
#pragma once

#include <array>
#include <cstdint>

namespace ibbe::bigint {

/// 512-bit unsigned integer, little-endian limbs.
struct U512 {
  std::array<std::uint64_t, 8> limb{0, 0, 0, 0, 0, 0, 0, 0};

  friend bool operator==(const U512&, const U512&) = default;
};

/// out += a. Returns the carry out of the top limb — 0 whenever the caller's
/// bound analysis is right; the field layer asserts this in debug builds.
inline std::uint64_t u512_add(U512& out, const U512& a) {
  unsigned __int128 carry = 0;
  for (int i = 0; i < 8; ++i) {
    unsigned __int128 s = static_cast<unsigned __int128>(out.limb[static_cast<std::size_t>(i)]) +
                          a.limb[static_cast<std::size_t>(i)] + carry;
    out.limb[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(s);
    carry = s >> 64;
  }
  return static_cast<std::uint64_t>(carry);
}

/// out -= a (two's-complement wraparound). Returns the borrow out of the top
/// limb — 0 whenever out >= a as integers, which the caller must ensure
/// (typically by adding a p^2 offset first).
inline std::uint64_t u512_sub(U512& out, const U512& a) {
  unsigned __int128 borrow = 0;
  for (int i = 0; i < 8; ++i) {
    unsigned __int128 d = static_cast<unsigned __int128>(out.limb[static_cast<std::size_t>(i)]) -
                          a.limb[static_cast<std::size_t>(i)] - borrow;
    out.limb[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(d);
    borrow = (d >> 64) & 1;
  }
  return static_cast<std::uint64_t>(borrow);
}

}  // namespace ibbe::bigint
