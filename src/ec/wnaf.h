// Windowed non-adjacent-form (wNAF) scalar recoding, shared by the generic
// curve template, the GLV/GLS fast paths, and the MSM engine.
#pragma once

#include <cstdint>
#include <vector>

#include "bigint/u256.h"

namespace ibbe::ec {

/// Signed-digit recoding: digits[i] is the coefficient of 2^i, each either
/// zero or odd with |d| < 2^(w-1), and any two non-zero digits at least w
/// positions apart. Trailing zeros are stripped (zero scalar -> empty).
inline std::vector<int> wnaf_digits(const bigint::U256& k, unsigned w) {
  // Work on a mutable bit array with headroom for the final carry.
  std::vector<std::uint8_t> bits(256 + w + 1, 0);
  for (unsigned i = 0; i < 256; ++i) bits[i] = k.bit(i) ? 1 : 0;
  std::vector<int> digits(bits.size(), 0);
  for (std::size_t i = 0; i < bits.size();) {
    if (bits[i] == 0) {
      ++i;
      continue;
    }
    int val = 0;
    for (unsigned j = 0; j < w && i + j < bits.size(); ++j) {
      val |= bits[i + j] << j;
    }
    int d = val;
    if (d >= (1 << (w - 1))) {
      d -= 1 << w;
      // Borrowed from the next window: propagate a carry upward.
      std::size_t pos = i + w;
      while (pos < bits.size() && bits[pos] == 1) bits[pos++] = 0;
      if (pos < bits.size()) bits[pos] = 1;
    }
    for (unsigned j = 0; j < w && i + j < bits.size(); ++j) bits[i + j] = 0;
    digits[i] = d;
    i += w;
  }
  while (!digits.empty() && digits.back() == 0) digits.pop_back();
  return digits;
}

}  // namespace ibbe::ec
