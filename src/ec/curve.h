// Short-Weierstrass elliptic-curve groups in Jacobian coordinates.
//
// One template serves all three curves in the project:
//   G1        — BN254 E(Fp):  y^2 = x^3 + 3            (a = 0)
//   G2        — BN254 D-twist E'(Fp2): y^2 = x^3 + 3/xi (a = 0)
//   P256Point — NIST P-256:   y^2 = x^3 - 3x + b       (a = -3)
//
// `Params` supplies the coefficients and the generator:
//   using Field = ...;
//   static const Field& a();  static bool a_is_zero();
//   static const Field& b();
//   static const Field& gen_x();  static const Field& gen_y();
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "bigint/u256.h"

namespace ibbe::ec {

template <typename Params>
class JacobianPoint {
 public:
  using Field = typename Params::Field;

  /// Point at infinity.
  JacobianPoint() = default;

  static JacobianPoint infinity() { return {}; }
  static JacobianPoint generator() {
    return from_affine(Params::gen_x(), Params::gen_y());
  }
  /// Does not validate curve membership; see on_curve().
  static JacobianPoint from_affine(const Field& x, const Field& y) {
    JacobianPoint p;
    p.x_ = x;
    p.y_ = y;
    p.z_ = Field::one();
    return p;
  }

  [[nodiscard]] bool is_infinity() const { return z_.is_zero(); }

  /// (x, y) affine coordinates; nullopt for the point at infinity.
  [[nodiscard]] std::optional<std::pair<Field, Field>> to_affine() const {
    if (is_infinity()) return std::nullopt;
    Field zinv = z_.inverse();
    Field zinv2 = zinv.square();
    return std::make_pair(x_ * zinv2, y_ * zinv2 * zinv);
  }

  [[nodiscard]] bool on_curve() const {
    if (is_infinity()) return true;
    // Y^2 = X^3 + a X Z^4 + b Z^6
    Field z2 = z_.square();
    Field z4 = z2.square();
    Field rhs = x_ * x_.square() + Params::b() * z4 * z2;
    if (!Params::a_is_zero()) rhs += Params::a() * x_ * z4;
    return y_.square() == rhs;
  }

  [[nodiscard]] JacobianPoint neg() const {
    JacobianPoint p = *this;
    p.y_ = p.y_.neg();
    return p;
  }

  [[nodiscard]] JacobianPoint dbl() const {
    if (is_infinity() || y_.is_zero()) return infinity();
    Field y2 = y_.square();
    Field s = (x_ * y2).dbl().dbl();  // 4 X Y^2
    Field m = x_.square();
    m = m + m.dbl();  // 3 X^2
    if (!Params::a_is_zero()) m += Params::a() * z_.square().square();
    JacobianPoint out;
    out.x_ = m.square() - s.dbl();
    out.y_ = m * (s - out.x_) - y2.square().dbl().dbl().dbl();  // - 8 Y^4
    out.z_ = (y_ * z_).dbl();
    return out;
  }

  friend JacobianPoint operator+(const JacobianPoint& p, const JacobianPoint& q) {
    if (p.is_infinity()) return q;
    if (q.is_infinity()) return p;
    Field z1z1 = p.z_.square();
    Field z2z2 = q.z_.square();
    Field u1 = p.x_ * z2z2;
    Field u2 = q.x_ * z1z1;
    Field s1 = p.y_ * z2z2 * q.z_;
    Field s2 = q.y_ * z1z1 * p.z_;
    if (u1 == u2) {
      if (s1 == s2) return p.dbl();
      return infinity();  // P + (-P)
    }
    Field h = u2 - u1;
    Field r = s2 - s1;
    Field h2 = h.square();
    Field h3 = h2 * h;
    Field u1h2 = u1 * h2;
    JacobianPoint out;
    out.x_ = r.square() - h3 - u1h2.dbl();
    out.y_ = r * (u1h2 - out.x_) - s1 * h3;
    out.z_ = p.z_ * q.z_ * h;
    return out;
  }
  friend JacobianPoint operator-(const JacobianPoint& p, const JacobianPoint& q) {
    return p + q.neg();
  }
  JacobianPoint& operator+=(const JacobianPoint& o) { return *this = *this + o; }

  /// Left-to-right double-and-add. Scalars are canonical U256 values.
  [[nodiscard]] JacobianPoint scalar_mul(const bigint::U256& k) const {
    JacobianPoint acc = infinity();
    for (unsigned i = k.bit_length(); i-- > 0;) {
      acc = acc.dbl();
      if (k.bit(i)) acc += *this;
    }
    return acc;
  }

  /// Windowed-NAF multiplication: ~bits/(w+1) additions instead of ~bits/2,
  /// for 2^(w-2) precomputed odd multiples. Same result as scalar_mul; kept
  /// separate so the ablation bench can compare the two.
  [[nodiscard]] JacobianPoint scalar_mul_wnaf(const bigint::U256& k,
                                              unsigned window = 4) const {
    if (k.is_zero() || is_infinity()) return infinity();
    auto digits = wnaf_digits(k, window);
    // Precompute odd multiples P, 3P, ..., (2^(w-1)-1)P.
    std::vector<JacobianPoint> odd(std::size_t{1} << (window - 2));
    odd[0] = *this;
    JacobianPoint twice = dbl();
    for (std::size_t i = 1; i < odd.size(); ++i) odd[i] = odd[i - 1] + twice;

    JacobianPoint acc = infinity();
    for (std::size_t i = digits.size(); i-- > 0;) {
      acc = acc.dbl();
      int d = digits[i];
      if (d > 0) acc += odd[static_cast<std::size_t>(d / 2)];
      if (d < 0) acc += odd[static_cast<std::size_t>(-d / 2)].neg();
    }
    return acc;
  }
  /// Scalar given as a field element of the (prime) group order.
  template <typename Scalar>
  [[nodiscard]] JacobianPoint mul(const Scalar& k) const {
    return scalar_mul(k.to_u256());
  }

  friend bool operator==(const JacobianPoint& p, const JacobianPoint& q) {
    bool pi = p.is_infinity(), qi = q.is_infinity();
    if (pi || qi) return pi == qi;
    // Cross-multiplied affine comparison.
    Field z1z1 = p.z_.square();
    Field z2z2 = q.z_.square();
    return p.x_ * z2z2 == q.x_ * z1z1 &&
           p.y_ * z2z2 * q.z_ == q.y_ * z1z1 * p.z_;
  }

 private:
  /// Signed-digit recoding: digits[i] is the coefficient of 2^i, each either
  /// zero or odd with |d| < 2^(w-1), and any two non-zero digits at least w
  /// positions apart.
  static std::vector<int> wnaf_digits(const bigint::U256& k, unsigned w) {
    // Work on a mutable bit array with headroom for the final carry.
    std::vector<std::uint8_t> bits(256 + w + 1, 0);
    for (unsigned i = 0; i < 256; ++i) bits[i] = k.bit(i) ? 1 : 0;
    std::vector<int> digits(bits.size(), 0);
    for (std::size_t i = 0; i < bits.size();) {
      if (bits[i] == 0) {
        ++i;
        continue;
      }
      int val = 0;
      for (unsigned j = 0; j < w && i + j < bits.size(); ++j) {
        val |= bits[i + j] << j;
      }
      int d = val;
      if (d >= (1 << (w - 1))) {
        d -= 1 << w;
        // Borrowed from the next window: propagate a carry upward.
        std::size_t pos = i + w;
        while (pos < bits.size() && bits[pos] == 1) bits[pos++] = 0;
        if (pos < bits.size()) bits[pos] = 1;
      }
      for (unsigned j = 0; j < w && i + j < bits.size(); ++j) bits[i + j] = 0;
      digits[i] = d;
      i += w;
    }
    while (!digits.empty() && digits.back() == 0) digits.pop_back();
    return digits;
  }

  Field x_{};
  Field y_{};
  Field z_{};  // zero => infinity
};

}  // namespace ibbe::ec
