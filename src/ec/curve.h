// Short-Weierstrass elliptic-curve groups in Jacobian coordinates.
//
// One template serves all three curves in the project:
//   G1        — BN254 E(Fp):  y^2 = x^3 + 3            (a = 0)
//   G2        — BN254 D-twist E'(Fp2): y^2 = x^3 + 3/xi (a = 0)
//   P256Point — NIST P-256:   y^2 = x^3 - 3x + b       (a = -3)
//
// `Params` supplies the coefficients and the generator:
//   using Field = ...;
//   static const Field& a();  static bool a_is_zero();
//   static const Field& b();
//   static const Field& gen_x();  static const Field& gen_y();
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "bigint/u256.h"
#include "ec/wnaf.h"

namespace ibbe::ec {

/// Affine point for precomputed tables: cheaper mixed additions and half the
/// memory of a Jacobian point. `inf` marks the identity.
template <typename F>
struct AffinePt {
  F x{};
  F y{};
  bool inf = true;
};

template <typename Params>
class JacobianPoint {
 public:
  using Field = typename Params::Field;

  /// Point at infinity.
  JacobianPoint() = default;

  static JacobianPoint infinity() { return {}; }
  static JacobianPoint generator() {
    return from_affine(Params::gen_x(), Params::gen_y());
  }
  /// Does not validate curve membership; see on_curve().
  static JacobianPoint from_affine(const Field& x, const Field& y) {
    JacobianPoint p;
    p.x_ = x;
    p.y_ = y;
    p.z_ = Field::one();
    return p;
  }
  static JacobianPoint from_affine(const AffinePt<Field>& a) {
    return a.inf ? infinity() : from_affine(a.x, a.y);
  }
  /// Raw Jacobian coordinates (x = X/Z^2, y = Y/Z^3); no validation. Used by
  /// the endomorphism maps, which act coordinate-wise.
  static JacobianPoint from_jacobian(const Field& x, const Field& y,
                                     const Field& z) {
    JacobianPoint p;
    p.x_ = x;
    p.y_ = y;
    p.z_ = z;
    return p;
  }
  [[nodiscard]] const Field& jac_x() const { return x_; }
  [[nodiscard]] const Field& jac_y() const { return y_; }
  [[nodiscard]] const Field& jac_z() const { return z_; }

  [[nodiscard]] bool is_infinity() const { return z_.is_zero(); }

  /// (x, y) affine coordinates; nullopt for the point at infinity.
  [[nodiscard]] std::optional<std::pair<Field, Field>> to_affine() const {
    if (is_infinity()) return std::nullopt;
    Field zinv = z_.inverse();
    Field zinv2 = zinv.square();
    return std::make_pair(x_ * zinv2, y_ * zinv2 * zinv);
  }

  [[nodiscard]] bool on_curve() const {
    if (is_infinity()) return true;
    // Y^2 = X^3 + a X Z^4 + b Z^6
    Field z2 = z_.square();
    Field z4 = z2.square();
    Field rhs = x_ * x_.square() + Params::b() * z4 * z2;
    if (!Params::a_is_zero()) rhs += Params::a() * x_ * z4;
    return y_.square() == rhs;
  }

  [[nodiscard]] JacobianPoint neg() const {
    JacobianPoint p = *this;
    p.y_ = p.y_.neg();
    return p;
  }

  [[nodiscard]] JacobianPoint dbl() const {
    if (is_infinity() || y_.is_zero()) return infinity();
    Field y2 = y_.square();
    Field s = (x_ * y2).dbl().dbl();  // 4 X Y^2
    Field m = x_.square();
    m = m + m.dbl();  // 3 X^2
    if (!Params::a_is_zero()) m += Params::a() * z_.square().square();
    JacobianPoint out;
    out.x_ = m.square() - s.dbl();
    out.y_ = m * (s - out.x_) - y2.square().dbl().dbl().dbl();  // - 8 Y^4
    out.z_ = (y_ * z_).dbl();
    return out;
  }

  friend JacobianPoint operator+(const JacobianPoint& p, const JacobianPoint& q) {
    if (p.is_infinity()) return q;
    if (q.is_infinity()) return p;
    Field z1z1 = p.z_.square();
    Field z2z2 = q.z_.square();
    Field u1 = p.x_ * z2z2;
    Field u2 = q.x_ * z1z1;
    Field s1 = p.y_ * z2z2 * q.z_;
    Field s2 = q.y_ * z1z1 * p.z_;
    if (u1 == u2) {
      if (s1 == s2) return p.dbl();
      return infinity();  // P + (-P)
    }
    Field h = u2 - u1;
    Field r = s2 - s1;
    Field h2 = h.square();
    Field h3 = h2 * h;
    Field u1h2 = u1 * h2;
    JacobianPoint out;
    out.x_ = r.square() - h3 - u1h2.dbl();
    out.y_ = r * (u1h2 - out.x_) - s1 * h3;
    out.z_ = p.z_ * q.z_ * h;
    return out;
  }
  friend JacobianPoint operator-(const JacobianPoint& p, const JacobianPoint& q) {
    return p + q.neg();
  }
  JacobianPoint& operator+=(const JacobianPoint& o) { return *this = *this + o; }

  /// Mixed addition with an affine point (Z2 = 1): saves the Z2 work of the
  /// general formula. Precomputed-table hot path (Straus/Pippenger/comb).
  [[nodiscard]] JacobianPoint add_mixed(const AffinePt<Field>& q) const {
    if (q.inf) return *this;
    if (is_infinity()) return from_affine(q.x, q.y);
    Field z1z1 = z_.square();
    Field u2 = q.x * z1z1;
    Field s2 = q.y * z1z1 * z_;
    if (x_ == u2) {
      if (y_ == s2) return dbl();
      return infinity();  // P + (-P)
    }
    Field h = u2 - x_;
    Field r = s2 - y_;
    Field h2 = h.square();
    Field h3 = h2 * h;
    Field u1h2 = x_ * h2;
    JacobianPoint out;
    out.x_ = r.square() - h3 - u1h2.dbl();
    out.y_ = r * (u1h2 - out.x_) - y_ * h3;
    out.z_ = z_ * h;
    return out;
  }

  /// Normalizes a batch of points to affine with ONE field inversion
  /// (Montgomery's trick). Infinity entries come back with `inf` set.
  static std::vector<AffinePt<Field>> batch_to_affine(
      std::span<const JacobianPoint> pts) {
    std::vector<AffinePt<Field>> out(pts.size());
    // prefix[i] = product of the non-zero Zs among pts[0..i).
    std::vector<Field> prefix;
    prefix.reserve(pts.size() + 1);
    prefix.push_back(Field::one());
    for (const auto& p : pts) {
      prefix.push_back(p.is_infinity() ? prefix.back()
                                       : prefix.back() * p.z_);
    }
    Field inv = prefix.back().inverse();  // non-zero: product of non-zero Zs
    for (std::size_t i = pts.size(); i-- > 0;) {
      const auto& p = pts[i];
      if (p.is_infinity()) continue;
      Field zinv = inv * prefix[i];
      inv *= p.z_;
      Field zinv2 = zinv.square();
      out[i].x = p.x_ * zinv2;
      out[i].y = p.y_ * zinv2 * zinv;
      out[i].inf = false;
    }
    return out;
  }

  /// Left-to-right double-and-add. Scalars are canonical U256 values.
  [[nodiscard]] JacobianPoint scalar_mul(const bigint::U256& k) const {
    JacobianPoint acc = infinity();
    for (unsigned i = k.bit_length(); i-- > 0;) {
      acc = acc.dbl();
      if (k.bit(i)) acc += *this;
    }
    return acc;
  }

  /// Windowed-NAF multiplication: ~bits/(w+1) additions instead of ~bits/2,
  /// for 2^(w-2) precomputed odd multiples. Same result as scalar_mul; kept
  /// separate so the ablation bench can compare the two.
  [[nodiscard]] JacobianPoint scalar_mul_wnaf(const bigint::U256& k,
                                              unsigned window = 4) const {
    if (k.is_zero() || is_infinity()) return infinity();
    auto digits = wnaf_digits(k, window);
    // Precompute odd multiples P, 3P, ..., (2^(w-1)-1)P.
    std::vector<JacobianPoint> odd(std::size_t{1} << (window - 2));
    odd[0] = *this;
    JacobianPoint twice = dbl();
    for (std::size_t i = 1; i < odd.size(); ++i) odd[i] = odd[i - 1] + twice;

    JacobianPoint acc = infinity();
    for (std::size_t i = digits.size(); i-- > 0;) {
      acc = acc.dbl();
      int d = digits[i];
      if (d > 0) acc += odd[static_cast<std::size_t>(d / 2)];
      if (d < 0) acc += odd[static_cast<std::size_t>(-d / 2)].neg();
    }
    return acc;
  }
  /// Scalar given as a field element of the (prime) group order. The
  /// concrete curves specialize this (see ec/curves.h): fixed-base comb
  /// tables for the generators, GLV/GLS endomorphism splitting for other
  /// BN254 points, wNAF for other P-256 points.
  template <typename Scalar>
  [[nodiscard]] JacobianPoint mul(const Scalar& k) const {
    return scalar_mul(k.to_u256());
  }

  friend bool operator==(const JacobianPoint& p, const JacobianPoint& q) {
    bool pi = p.is_infinity(), qi = q.is_infinity();
    if (pi || qi) return pi == qi;
    // Cross-multiplied affine comparison.
    Field z1z1 = p.z_.square();
    Field z2z2 = q.z_.square();
    return p.x_ * z2z2 == q.x_ * z1z1 &&
           p.y_ * z2z2 * q.z_ == q.y_ * z1z1 * p.z_;
  }

 private:
  Field x_{};
  Field y_{};
  Field z_{};  // zero => infinity
};

}  // namespace ibbe::ec
