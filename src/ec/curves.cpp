#include "ec/curves.h"

#include "crypto/sha256.h"

namespace ibbe::ec {

using field::Fp;
using field::Fp2;
using field::P256Fp;

// ----------------------------------------------------------------- G1 params

const Fp& G1Params::a() {
  static const Fp v = Fp::zero();
  return v;
}
const Fp& G1Params::b() {
  static const Fp v = Fp::from_u64(3);
  return v;
}
const Fp& G1Params::gen_x() {
  static const Fp v = Fp::from_u64(1);
  return v;
}
const Fp& G1Params::gen_y() {
  static const Fp v = Fp::from_u64(2);
  return v;
}

// ----------------------------------------------------------------- G2 params

const Fp2& G2Params::a() {
  static const Fp2 v = Fp2::zero();
  return v;
}
const Fp2& G2Params::b() {
  // 3 / xi — the D-type sextic twist coefficient.
  static const Fp2 v = Fp2::from_fp(Fp::from_u64(3)) * Fp2::xi().inverse();
  return v;
}
const Fp2& G2Params::gen_x() {
  // Standard alt_bn128 G2 generator (EIP-197 ordering: c0 = real part).
  static const Fp2 v(
      Fp::from_hex("1800deef121f1e76426a00665e5c4479674322d4f75edadd46debd5cd992f6ed"),
      Fp::from_hex("198e9393920d483a7260bfb731fb5d25f1aa493335a9e71297e485b7aef312c2"));
  return v;
}
const Fp2& G2Params::gen_y() {
  static const Fp2 v(
      Fp::from_hex("12c85ea5db8c6deb4aab71808dcb408fe3d1e7690c43d37b4ce6cc0166fa7daa"),
      Fp::from_hex("090689d0585ff075ec9e99ad690c3395bc4b313370b38ef355acdadcd122975b"));
  return v;
}

// --------------------------------------------------------------- P256 params

const P256Fp& P256Params::a() {
  static const P256Fp v = P256Fp::from_u64(3).neg();
  return v;
}
const P256Fp& P256Params::b() {
  static const P256Fp v = P256Fp::from_hex(
      "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b");
  return v;
}
const P256Fp& P256Params::gen_x() {
  static const P256Fp v = P256Fp::from_hex(
      "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296");
  return v;
}
const P256Fp& P256Params::gen_y() {
  static const P256Fp v = P256Fp::from_hex(
      "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5");
  return v;
}

// ------------------------------------------------------------- serialization

namespace {

// Shared flag||x compression for curves with an Fp-like coordinate field.
template <typename Point, typename Field>
util::Bytes compress_fp_point(const Point& p) {
  util::ByteWriter w;
  auto affine = p.to_affine();
  if (!affine) {
    w.u8(0x00);
    w.raw(std::array<std::uint8_t, 32>{});
    return w.take();
  }
  w.u8(affine->second.is_odd() ? 0x03 : 0x02);
  w.raw(affine->first.to_be_bytes());
  return w.take();
}

// Parses an untrusted 32-byte field coordinate; rejects unreduced values
// with DeserializeError (the deserializers' contract) rather than the field
// layer's invalid_argument.
template <typename Field>
Field parse_coordinate(std::span<const std::uint8_t> b32, const char* what) {
  bigint::U256 raw = bigint::U256::from_be_bytes(b32);
  if (bigint::cmp(raw, Field::modulus()) >= 0) {
    throw util::DeserializeError(std::string(what) + ": coordinate not in field");
  }
  return Field::from_u256(raw);
}

template <typename Point, typename Params>
Point decompress_fp_point(std::span<const std::uint8_t> data, const char* what) {
  using Field = typename Params::Field;
  if (data.size() != 33) throw util::DeserializeError(std::string(what) + ": bad length");
  std::uint8_t flag = data[0];
  if (flag == 0x00) return Point::infinity();
  if (flag != 0x02 && flag != 0x03) {
    throw util::DeserializeError(std::string(what) + ": bad flag");
  }
  Field x = parse_coordinate<Field>(data.subspan(1), what);
  Field rhs = x * x.square() + Params::b();
  if (!Params::a_is_zero()) rhs += Params::a() * x;
  auto y = rhs.sqrt();
  if (!y) throw util::DeserializeError(std::string(what) + ": x not on curve");
  Field y_final = (y->is_odd() == (flag == 0x03)) ? *y : y->neg();
  return Point::from_affine(x, y_final);
}

}  // namespace

util::Bytes g1_to_bytes(const G1& p) { return compress_fp_point<G1, Fp>(p); }

G1 g1_from_bytes(std::span<const std::uint8_t> data) {
  // BN254 G1 has prime order r (cofactor 1): on-curve implies in-subgroup.
  return decompress_fp_point<G1, G1Params>(data, "G1");
}

util::Bytes p256_to_bytes(const P256Point& p) {
  return compress_fp_point<P256Point, P256Fp>(p);
}

P256Point p256_from_bytes(std::span<const std::uint8_t> data) {
  // P-256 also has cofactor 1.
  return decompress_fp_point<P256Point, P256Params>(data, "P256");
}

util::Bytes g2_to_bytes(const G2& p) {
  util::ByteWriter w;
  auto affine = p.to_affine();
  if (!affine) {
    w.u8(0x00);
    w.raw(std::array<std::uint8_t, 64>{});
    return w.take();
  }
  w.u8(affine->second.is_odd() ? 0x03 : 0x02);
  w.raw(affine->first.c0().to_be_bytes());
  w.raw(affine->first.c1().to_be_bytes());
  return w.take();
}

G2 g2_from_bytes(std::span<const std::uint8_t> data, bool subgroup_check) {
  if (data.size() != g2_serialized_size) {
    throw util::DeserializeError("G2: bad length");
  }
  std::uint8_t flag = data[0];
  if (flag == 0x00) return G2::infinity();
  if (flag != 0x02 && flag != 0x03) throw util::DeserializeError("G2: bad flag");
  Fp2 x(parse_coordinate<Fp>(data.subspan(1, 32), "G2"),
        parse_coordinate<Fp>(data.subspan(33, 32), "G2"));
  Fp2 rhs = x * x.square() + G2Params::b();
  auto y = rhs.sqrt();
  if (!y) throw util::DeserializeError("G2: x not on curve");
  Fp2 y_final = (y->is_odd() == (flag == 0x03)) ? *y : y->neg();
  G2 point = G2::from_affine(x, y_final);
  if (subgroup_check && !point.scalar_mul(bn_group_order()).is_infinity()) {
    throw util::DeserializeError("G2: point not in the order-r subgroup");
  }
  return point;
}

// ------------------------------------------------------------- hash-to-curve

G1 hash_to_g1(std::string_view msg) {
  for (std::uint32_t counter = 0; counter < 256; ++counter) {
    crypto::Sha256 h;
    h.update("ibbe-sgx:h2c:g1:");
    h.update(msg);
    std::array<std::uint8_t, 4> ctr_bytes = {
        static_cast<std::uint8_t>(counter >> 24), static_cast<std::uint8_t>(counter >> 16),
        static_cast<std::uint8_t>(counter >> 8), static_cast<std::uint8_t>(counter)};
    h.update(ctr_bytes);
    auto digest = h.finish();
    Fp x = Fp::from_be_bytes_reduce(digest);
    Fp rhs = x * x.square() + G1Params::b();
    if (auto y = rhs.sqrt()) {
      // Deterministic sign choice from the digest keeps the map stable.
      Fp y_final = ((digest[0] & 1) == (y->is_odd() ? 1 : 0)) ? *y : y->neg();
      return G1::from_affine(x, y_final);
    }
  }
  // Each try succeeds with probability ~1/2; reaching here is impossible in
  // practice (2^-256).
  throw std::logic_error("hash_to_g1: no curve point found");
}

const bigint::U256& bn_group_order() {
  static const bigint::U256 r = field::Fr::modulus();
  return r;
}

}  // namespace ibbe::ec
