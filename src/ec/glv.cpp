#include "ec/glv.h"

#include <array>
#include <stdexcept>
#include <utility>
#include <vector>

#include "bigint/biguint.h"
#include "bigint/int512.h"
#include "ec/wnaf.h"
#include "field/fields.h"
#include "field/tower_consts.h"

namespace ibbe::ec {

using bigint::BigUInt;
using bigint::U256;
using field::Fp;
using field::Fp2;
using field::Fr;

namespace {

// The per-scalar decomposition works on 8-limb products from mul_wide via
// the shared bigint/int512.h toolkit so it never allocates; BigUInt appears
// on the derivation (init) path only.
using bigint::Limbs8;
using bigint::round_shift_512;
using bigint::S512;
using bigint::signed_add;
using bigint::signed_sub;
using bigint::s512_from_u256;
using bigint::s512_to_u256;

// Init-time signed BigUInt arithmetic also comes from the shared toolkit.
using SB = bigint::SBig;
using bigint::sbig_sub;

/// (a + b * eig) mod n, all signed inputs with |.| arbitrary.
BigUInt eval_mod(const BigUInt& a_mag, bool a_neg, const BigUInt& b_mag,
                 bool b_neg, const BigUInt& eig, const BigUInt& n) {
  BigUInt am = a_mag % n;
  if (a_neg && !am.is_zero()) am = n - am;
  BigUInt bm = (b_mag % n) * eig % n;
  if (b_neg && !bm.is_zero()) bm = n - bm;
  return (am + bm) % n;
}

/// Smallest non-trivial cube root of unity in the field, via g^((q-1)/3)
/// for ascending small g. Throws if the field has none (q != 1 mod 3).
template <typename Field>
Field cube_root_of_unity() {
  BigUInt q = BigUInt::from_u256(Field::modulus());
  auto [e, rem] = BigUInt::divmod(q - BigUInt(1), BigUInt(3));
  if (!rem.is_zero()) {
    throw std::logic_error("glv: field order is not 1 mod 3");
  }
  U256 exp = e.to_u256();
  for (std::uint64_t g = 2; g < 64; ++g) {
    Field c = Field::from_u64(g).pow(exp);
    if (!c.is_one()) return c;
  }
  throw std::logic_error("glv: no cube root of unity found");
}

// ----------------------------------------------------------------- G1 GLV

struct GlvCtx {
  Fp beta;          // phi(x, y) = (beta x, y)
  U256 lambda;      // phi = [lambda] on G1
  // Lattice basis of {(a, b) : a + b lambda = 0 mod r}: v1 = (a1, b1),
  // v2 = (a2, b2). The a_i are positive by construction (Euclidean
  // remainders); the b_i carry signs.
  U256 a1, a2, b1, b2;
  bool b1_neg = false, b2_neg = false;
  // Barrett-style rounding constants: c1 = round(k |b2| / r) and
  // c2 = round(k |b1| / r) computed as ((k * g_i) + 2^253) >> 254 with
  // g_i = round((|b_i| << 254) / r).
  U256 g1c, g2c;
  bool c1_neg = false, c2_neg = false;  // signs of c1, c2 for k >= 0

  GlvCtx() {
    const BigUInt n = BigUInt::from_u256(Fr::modulus());

    beta = cube_root_of_unity<Fp>();
    Fr lr = cube_root_of_unity<Fr>();
    // Pair the Fr root with beta: phi must act as [lambda] on G1.
    const G1 g = G1::generator();
    const G1 phi_g =
        G1::from_jacobian(g.jac_x() * beta, g.jac_y(), g.jac_z());
    if (g.scalar_mul(lr.to_u256()) != phi_g) {
      lr = lr * lr;  // the other primitive root
      if (g.scalar_mul(lr.to_u256()) != phi_g) {
        throw std::logic_error("glv: no cube root matches the endomorphism");
      }
    }
    lambda = lr.to_u256();

    // Extended Euclid on (r, lambda): remainders r_i = s_i r + t_i lambda.
    // Stop at the first remainder below sqrt(r); the surrounding rows give
    // the classic GLV short basis (Gallant-Lambert-Vanstone, CRYPTO 2001).
    BigUInt r0 = n, r1 = BigUInt::from_u256(lambda);
    SB t0{BigUInt(0), false}, t1{BigUInt(1), false};
    while (r1 * r1 >= n) {
      auto [q, r2] = BigUInt::divmod(r0, r1);
      SB t2 = sbig_sub(t0, {q * t1.v, t1.neg});
      r0 = std::move(r1);
      r1 = std::move(r2);
      t0 = std::move(t1);
      t1 = std::move(t2);
    }
    // v1 = (r_{l+1}, -t_{l+1}); v2 = shorter of (r_l, -t_l), (r_{l+2}, -t_{l+2}).
    auto [q, r2] = BigUInt::divmod(r0, r1);
    SB t2 = sbig_sub(t0, {q * t1.v, t1.neg});
    BigUInt va = r1;
    SB vb{t1.v, !t1.neg};
    BigUInt wa = r0;
    SB wb{t0.v, !t0.neg};
    if (r2 * r2 + t2.v * t2.v < wa * wa + wb.v * wb.v) {
      wa = r2;
      wb = {t2.v, !t2.neg};
    }
    for (const auto* p : {&va, &wa}) {
      const SB& b = p == &va ? vb : wb;
      if (!eval_mod(*p, false, b.v, b.neg, BigUInt::from_u256(lambda), n)
               .is_zero() ||
          p->bit_length() > 140 || b.v.bit_length() > 140) {
        throw std::logic_error("glv: lattice basis derivation failed");
      }
    }
    a1 = va.to_u256();
    b1 = vb.v.to_u256();
    b1_neg = vb.neg;
    a2 = wa.to_u256();
    b2 = wb.v.to_u256();
    b2_neg = wb.neg;

    // (k, 0) = (k b2 / det) v1 - (k b1 / det) v2 with det = a1 b2 - a2 b1
    // = +-r, so the rounding signs depend on the determinant's sign.
    SB det = sbig_sub({BigUInt::from_u256(a1) * BigUInt::from_u256(b2), b2_neg},
                    {BigUInt::from_u256(a2) * BigUInt::from_u256(b1), b1_neg});
    if (det.v != n) {
      throw std::logic_error("glv: basis determinant is not +-r");
    }
    auto barrett = [&](const U256& b_mag) {
      auto [quo, rem] =
          BigUInt::divmod(BigUInt::from_u256(b_mag) << 254, n);
      if (rem + rem >= n) quo = quo + BigUInt(1);
      return quo.to_u256();
    };
    g1c = barrett(b2);
    c1_neg = det.neg ? !b2_neg : b2_neg;
    g2c = barrett(b1);
    c2_neg = det.neg ? b1_neg : !b1_neg;

    // End-to-end self-check: decompose a few scalars and confirm both
    // k0 + k1 * lambda == k (mod r) and that the halves are short.
    for (const U256& k :
         {U256::one(), U256::from_u64(0xdeadbeefcafef00dULL),
          bigint::mod(U256{{~0ull, ~0ull, ~0ull, ~0ull}}, Fr::modulus())}) {
      EndoDecomp d = decompose(k);
      BigUInt lhs = eval_mod(BigUInt::from_u256(d.k0), d.neg0,
                             BigUInt::from_u256(d.k1), d.neg1,
                             BigUInt::from_u256(lambda), n);
      if (lhs != BigUInt::from_u256(k) % n || d.k0.bit_length() > 132 ||
          d.k1.bit_length() > 132) {
        throw std::logic_error("glv: decomposition self-check failed");
      }
    }
  }

  [[nodiscard]] EndoDecomp decompose(const U256& k) const {
    // c_i = round(k |b_j| / r) via the precomputed reciprocals.
    U256 c1 = round_shift_512(bigint::mul_wide(k, g1c), 254);
    U256 c2 = round_shift_512(bigint::mul_wide(k, g2c), 254);
    // k0 = k - c1 a1 - c2 a2 ; k1 = -(c1 b1 + c2 b2), all signed.
    S512 s_k0 = signed_sub(
        signed_sub(s512_from_u256(k), S512{bigint::mul_wide(c1, a1), c1_neg}),
        S512{bigint::mul_wide(c2, a2), c2_neg});
    S512 s_k1 = signed_add(S512{bigint::mul_wide(c1, b1), !(c1_neg ^ b1_neg)},
                           S512{bigint::mul_wide(c2, b2), !(c2_neg ^ b2_neg)});
    EndoDecomp d;
    if (!s512_to_u256(s_k0, d.k0) || !s512_to_u256(s_k1, d.k1)) {
      throw std::logic_error("glv: decomposition out of range");
    }
    d.neg0 = s_k0.neg;
    d.neg1 = s_k1.neg;
    return d;
  }

  static const GlvCtx& get() {
    static const GlvCtx ctx;
    return ctx;
  }
};

// ----------------------------------------------------------------- G2 GLS

/// u = 4965661367192848881, the BN254 curve parameter.
constexpr std::uint64_t kBnU = 0x44e992b44a6909f1ULL;

struct GlsCtx {
  U256 mu;    // psi = [mu] on G2; mu = 6u^2 = p mod r, ~127 bits
  U256 recip; // floor(2^381 / mu) for the Barrett division below

  GlsCtx() {
    const BigUInt u = BigUInt::from_u256(U256::from_u64(kBnU));
    const BigUInt mu_big = BigUInt(6) * u * u;
    mu = mu_big.to_u256();
    recip = ((BigUInt(1) << 381) / mu_big).to_u256();

    const G2 g = G2::generator();
    if (g.scalar_mul(mu) != apply_psi(g)) {
      throw std::logic_error("gls: psi does not act as [6u^2] on G2");
    }
  }

  /// k = k1 mu + k0 by Barrett division (floor quotient, then <= 2 fixups).
  [[nodiscard]] EndoDecomp decompose(const U256& k) const {
    U256 q;
    {
      Limbs8 prod = bigint::mul_wide(k, recip);
      // floor shift by 381 = 5*64 + 61 (no rounding bit: under-estimate).
      for (unsigned i = 0; i < 4; ++i) {
        std::uint64_t lo = 5 + i < 8 ? prod[5 + i] : 0;
        std::uint64_t hi = 6 + i < 8 ? prod[6 + i] : 0;
        q.limb[i] = (lo >> 61) | (hi << 3);
      }
    }
    Limbs8 qm = bigint::mul_wide(q, mu);
    U256 low{{qm[0], qm[1], qm[2], qm[3]}};
    U256 rem;
    bigint::sub_with_borrow(k, low, rem);
    while (bigint::cmp(rem, mu) >= 0) {
      bigint::sub_with_borrow(rem, mu, rem);
      bigint::add_with_carry(q, U256::one(), q);
    }
    EndoDecomp d;
    d.k0 = rem;
    d.k1 = q;
    return d;
  }

  static const GlsCtx& get() {
    static const GlsCtx ctx;
    return ctx;
  }
};

// ----------------------------------------------------------- G2 4-dim GLS

/// Everything the 4-dim split needs beyond bn_psi_lattice(): the
/// psi-specific structural self-checks (the lattice constructor already
/// verified all the pure-integer facts) and the joint 4-term ladder, as a
/// member so the constructor can exercise it before the context is
/// published.
struct Gls4Ctx {
  Gls4Ctx() {
    const bigint::Lattice4& lat = bn_psi_lattice();
    const G2 g = G2::generator();
    // psi acts as [mu] with mu the lattice eigenvalue...
    if (apply_psi(g) != g.scalar_mul(lat.lambda())) {
      throw std::logic_error("gls4: psi does not act as the lattice eigenvalue");
    }
    // ...and satisfies the degree-4 minimal polynomial psi^4 - psi^2 + 1 = 0
    // on the subgroup, which is what makes the 4 basis columns independent.
    const G2 p2 = apply_psi(apply_psi(g));
    const G2 p4 = apply_psi(apply_psi(p2));
    if (p4 + g != p2) {
      throw std::logic_error("gls4: psi^4 - psi^2 + 1 != 0 on G2");
    }
    // End-to-end: the 4-term ladder against the double-and-add oracle.
    for (const U256& k :
         {U256::one(), U256::from_u64(0xdeadbeefcafef00dULL),
          bigint::mod(U256{{~0ull, ~0ull, ~0ull, ~0ull}}, Fr::modulus())}) {
      if (mul(g, lat.decompose(k)) != g.scalar_mul(k)) {
        throw std::logic_error("gls4: 4-dim multiplication self-check failed");
      }
    }
  }

  /// The joint width-4 wNAF ladder over {Q, psi(Q), psi^2(Q), psi^3(Q)}.
  /// One batch normalization pays for mixed additions throughout; tables
  /// 1..3 are coordinate-wise psi images of table 0 (no point additions).
  [[nodiscard]] G2 mul(const G2& q, const bigint::Decomp4& d) const {
    constexpr unsigned kWindow = 4;
    std::array<std::vector<int>, 4> digits;
    std::size_t len = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      digits[i] = wnaf_digits(d.k[i], kWindow);
      len = std::max(len, digits[i].size());
    }
    if (len == 0) return G2::infinity();

    std::vector<G2> jac;  // odd multiples 1, 3, 5, 7 of q
    jac.reserve(4);
    G2 m = q;
    const G2 twice = q.dbl();
    for (int i = 0; i < 4; ++i) {
      jac.push_back(m);
      m += twice;
    }
    std::array<std::array<AffinePt<Fp2>, 4>, 4> tbl;
    auto base = G2::batch_to_affine(jac);
    for (std::size_t i = 0; i < 4; ++i) tbl[0][i] = base[i];
    for (std::size_t i = 1; i < 4; ++i) {
      for (std::size_t j = 0; j < 4; ++j) tbl[i][j] = apply_psi(tbl[i - 1][j]);
    }

    G2 acc = G2::infinity();
    for (std::size_t pos = len; pos-- > 0;) {
      acc = acc.dbl();
      for (std::size_t i = 0; i < 4; ++i) {
        if (pos >= digits[i].size() || digits[i][pos] == 0) continue;
        int v = digits[i][pos];
        AffinePt<Fp2> e = tbl[i][static_cast<std::size_t>(v < 0 ? -v : v) / 2];
        if ((v < 0) != d.neg[i]) e.y = e.y.neg();
        acc = acc.add_mixed(e);
      }
    }
    return acc;
  }

  static const Gls4Ctx& get() {
    static const Gls4Ctx ctx;
    return ctx;
  }
};

U256 reduce_mod_r(const U256& k) {
  if (bigint::cmp(k, Fr::modulus()) < 0) return k;
  return bigint::mod(k, Fr::modulus());
}

/// Simultaneous double-and-add over the two half-length sub-scalars with
/// width-4 wNAF. The second odd-multiple table is the endomorphism image of
/// the first (one cheap map per entry instead of point additions).
template <typename Point, typename ApplyEndo>
Point dual_wnaf_mul(const Point& p, const EndoDecomp& d, ApplyEndo&& endo) {
  constexpr unsigned kWindow = 4;
  auto d0 = wnaf_digits(d.k0, kWindow);
  auto d1 = wnaf_digits(d.k1, kWindow);
  if (d0.empty() && d1.empty()) return Point::infinity();

  std::array<Point, 4> t0;  // (2i+1) * (+-P)
  t0[0] = d.neg0 ? p.neg() : p;
  Point twice = t0[0].dbl();
  for (std::size_t i = 1; i < t0.size(); ++i) t0[i] = t0[i - 1] + twice;
  std::array<Point, 4> t1;  // (2i+1) * (+-endo(P))
  const bool flip = d.neg0 != d.neg1;
  for (std::size_t i = 0; i < t1.size(); ++i) {
    t1[i] = endo(t0[i]);
    if (flip) t1[i] = t1[i].neg();
  }

  Point acc = Point::infinity();
  for (std::size_t i = std::max(d0.size(), d1.size()); i-- > 0;) {
    acc = acc.dbl();
    if (i < d0.size() && d0[i] != 0) {
      int v = d0[i];
      acc += v > 0 ? t0[static_cast<std::size_t>(v / 2)]
                   : t0[static_cast<std::size_t>(-v / 2)].neg();
    }
    if (i < d1.size() && d1[i] != 0) {
      int v = d1[i];
      acc += v > 0 ? t1[static_cast<std::size_t>(v / 2)]
                   : t1[static_cast<std::size_t>(-v / 2)].neg();
    }
  }
  return acc;
}

}  // namespace

G1 apply_phi(const G1& p) {
  if (p.is_infinity()) return p;
  return G1::from_jacobian(p.jac_x() * GlvCtx::get().beta, p.jac_y(),
                           p.jac_z());
}

G2 apply_psi(const G2& p) {
  if (p.is_infinity()) return p;
  const auto& g = field::TowerConsts::get().gamma;
  return G2::from_jacobian(p.jac_x().conjugate() * g[1],
                           p.jac_y().conjugate() * g[2],
                           p.jac_z().conjugate());
}

AffinePt<Fp2> apply_psi(const AffinePt<Fp2>& p) {
  if (p.inf) return p;
  const auto& g = field::TowerConsts::get().gamma;
  return {p.x.conjugate() * g[1], p.y.conjugate() * g[2], false};
}

const U256& glv_lambda() { return GlvCtx::get().lambda; }
const U256& gls_mu() { return GlsCtx::get().mu; }

EndoDecomp decompose_glv(const U256& k) {
  return GlvCtx::get().decompose(reduce_mod_r(k));
}

EndoDecomp decompose_gls(const U256& k) {
  return GlsCtx::get().decompose(reduce_mod_r(k));
}

G1 g1_mul_endo(const G1& p, const U256& k) {
  if (p.is_infinity()) return p;
  U256 kr = reduce_mod_r(k);
  if (kr.is_zero()) return G1::infinity();
  return dual_wnaf_mul(p, GlvCtx::get().decompose(kr), apply_phi);
}

G2 g2_mul_endo(const G2& q, const U256& k) {
  if (q.is_infinity()) return q;
  U256 kr = reduce_mod_r(k);
  if (kr.is_zero()) return G2::infinity();
  return dual_wnaf_mul(q, GlsCtx::get().decompose(kr),
                       [](const G2& p) { return apply_psi(p); });
}

const bigint::Lattice4& bn_psi_lattice() {
  static const bigint::Lattice4 lat = [] {
    const BigUInt u(kBnU);
    const std::uint64_t U = kBnU;
    // LLL-reduced basis of {(a0..a3) : sum a_i (6u^2)^i = 0 mod r}; every
    // entry is pinned by the curve parameter, determinant -r.
    const bigint::Lattice4::Basis basis = {{
        {{{2 * U, false}, {U + 1, false}, {U, true}, {U, false}}},
        {{{U, true}, {U, false}, {U, true}, {2 * U + 1, true}}},
        {{{U + 1, false}, {U, false}, {U, false}, {2 * U, true}}},
        {{{2 * U + 1, false}, {U, true}, {U + 1, true}, {U, true}}},
    }};
    return bigint::Lattice4(BigUInt::from_u256(Fr::modulus()),
                            BigUInt(6) * u * u, basis, /*max_sub_bits=*/72);
  }();
  return lat;
}

bigint::Decomp4 decompose_gls4(const U256& k) {
  Gls4Ctx::get();  // force the psi-action self-checks once
  return bn_psi_lattice().decompose(reduce_mod_r(k));
}

G2 g2_mul_endo4(const G2& q, const U256& k) {
  if (q.is_infinity()) return q;
  U256 kr = reduce_mod_r(k);
  if (kr.is_zero()) return G2::infinity();
  return Gls4Ctx::get().mul(q, bn_psi_lattice().decompose(kr));
}

}  // namespace ibbe::ec
