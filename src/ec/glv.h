// Endomorphism-accelerated scalar multiplication for the BN254 groups.
//
// G1 (GLV): the curve y^2 = x^3 + 3 has the cheap endomorphism
//   phi(x, y) = (beta x, y),   beta a primitive cube root of unity in Fp,
// which acts on the order-r subgroup as multiplication by lambda, a cube
// root of unity mod r. A scalar k splits as k = k0 + k1*lambda (mod r) with
// |k0|, |k1| ~ sqrt(r) via lattice reduction, so one ~254-bit ladder becomes
// a simultaneous ~128-bit double-and-add over {P, phi(P)}.
//
// G2 (GLS): the untwist-Frobenius-twist map
//   psi(x, y) = (conj(x) g2, conj(y) g3),   g_k = xi^(k(p-1)/6),
// acts on G2 as multiplication by p = t - 1 = 6u^2 (mod r). Since
// 6u^2 ~ sqrt(r), plain integer division k = k1*(6u^2) + k0 already yields
// two half-length non-negative sub-scalars — no lattice needed.
//
// G2 (4-dim GLS): psi's eigenvalue mu = 6u^2 has the degree-4 minimal
// polynomial X^4 - X^2 + 1 on the order-r subgroup (the cyclotomic quartic
// that also governs the Gt Frobenius), so k splits further into FOUR ~65-bit
// sub-scalars over {Q, psi(Q), psi^2(Q), psi^3(Q)} via Babai round-off
// against an LLL-reduced u-linear lattice basis (bigint/lattice4.h — the
// exact machinery, and in fact the exact lattice, of the Gt engine in
// pairing/gt_exp.cpp). The joint 4-term wNAF ladder halves the shared
// doubling count again, ~128 -> ~64.
//
// All constants (beta, lambda, the GLV lattice basis, 6u^2, the psi lattice)
// are derived and cross-checked at first use against scalar_mul, so a
// transcription error turns into a startup exception instead of silent
// wrong results.
#pragma once

#include "bigint/lattice4.h"
#include "bigint/u256.h"
#include "ec/curves.h"

namespace ibbe::ec {

/// phi(X, Y, Z) = (beta X, Y, Z); multiplication by glv_lambda() on G1.
G1 apply_phi(const G1& p);

/// psi = twist o Frobenius o untwist; multiplication by gls_mu() on G2.
G2 apply_psi(const G2& p);
/// psi on an affine table entry (stays affine: the map is coordinate-wise).
AffinePt<field::Fp2> apply_psi(const AffinePt<field::Fp2>& p);

/// The G1 eigenvalue lambda (cube root of unity mod r) and the G2 eigenvalue
/// mu = 6u^2 = p mod r. Exposed for tests.
const bigint::U256& glv_lambda();
const bigint::U256& gls_mu();

/// Two-dimensional scalar decomposition: k = (-1)^neg0 k0 + (-1)^neg1 k1 * eig
/// (mod r), with k0, k1 < ~2^131. GLS decompositions are always non-negative.
struct EndoDecomp {
  bigint::U256 k0;
  bigint::U256 k1;
  bool neg0 = false;
  bool neg1 = false;
};

/// GLV split of k (any U256; reduced mod r internally).
EndoDecomp decompose_glv(const bigint::U256& k);
/// GLS split of k (any U256; reduced mod r internally).
EndoDecomp decompose_gls(const bigint::U256& k);

/// k*P via GLV (valid for any P in G1; k reduced mod r, which agrees with
/// plain scalar_mul because G1 has order r).
G1 g1_mul_endo(const G1& p, const bigint::U256& k);
/// k*Q via GLS. Q must lie in the order-r subgroup (true for every G2 value
/// produced by this library; untrusted twist points outside the subgroup
/// must use scalar_mul).
G2 g2_mul_endo(const G2& q, const bigint::U256& k);

// ------------------------------------------------------------- 4-dim GLS

/// The shared psi/Frobenius lattice: LLL-reduced basis of
/// {(a0..a3) : sum a_i (6u^2)^i = 0 mod r}, entries all +-u, +-(u+1), +-2u
/// or +-(2u+1). psi on G2 and the p-power Frobenius on Gt share the
/// eigenvalue 6u^2 = p mod r, so this single instance serves both engines
/// (pairing/gt_exp.cpp borrows it). Sub-scalars are bounded by
/// max_sub_bits() = 72 bits (construction-verified; mathematically ~65).
const bigint::Lattice4& bn_psi_lattice();

/// Four-dimensional GLS split of k (any U256; reduced mod r internally):
/// k = sum_i (-1)^neg[i] k[i] mu^i (mod r) with k[i] < ~2^66.
bigint::Decomp4 decompose_gls4(const bigint::U256& k);

/// k*Q via the 4-dim psi decomposition: one joint width-4 wNAF ladder of
/// ~64 shared doublings over batch-normalized affine tables for
/// {Q, psi(Q), psi^2(Q), psi^3(Q)}. Same subgroup caveat as g2_mul_endo.
G2 g2_mul_endo4(const G2& q, const bigint::U256& k);

}  // namespace ibbe::ec
