// Endomorphism-accelerated scalar multiplication for the BN254 groups.
//
// G1 (GLV): the curve y^2 = x^3 + 3 has the cheap endomorphism
//   phi(x, y) = (beta x, y),   beta a primitive cube root of unity in Fp,
// which acts on the order-r subgroup as multiplication by lambda, a cube
// root of unity mod r. A scalar k splits as k = k0 + k1*lambda (mod r) with
// |k0|, |k1| ~ sqrt(r) via lattice reduction, so one ~254-bit ladder becomes
// a simultaneous ~128-bit double-and-add over {P, phi(P)}.
//
// G2 (GLS): the untwist-Frobenius-twist map
//   psi(x, y) = (conj(x) g2, conj(y) g3),   g_k = xi^(k(p-1)/6),
// acts on G2 as multiplication by p = t - 1 = 6u^2 (mod r). Since
// 6u^2 ~ sqrt(r), plain integer division k = k1*(6u^2) + k0 already yields
// two half-length non-negative sub-scalars — no lattice needed.
//
// All constants (beta, lambda, the GLV lattice basis, 6u^2) are derived and
// cross-checked at first use against scalar_mul, so a transcription error
// turns into a startup exception instead of silent wrong results.
#pragma once

#include "bigint/u256.h"
#include "ec/curves.h"

namespace ibbe::ec {

/// phi(X, Y, Z) = (beta X, Y, Z); multiplication by glv_lambda() on G1.
G1 apply_phi(const G1& p);

/// psi = twist o Frobenius o untwist; multiplication by gls_mu() on G2.
G2 apply_psi(const G2& p);
/// psi on an affine table entry (stays affine: the map is coordinate-wise).
AffinePt<field::Fp2> apply_psi(const AffinePt<field::Fp2>& p);

/// The G1 eigenvalue lambda (cube root of unity mod r) and the G2 eigenvalue
/// mu = 6u^2 = p mod r. Exposed for tests.
const bigint::U256& glv_lambda();
const bigint::U256& gls_mu();

/// Two-dimensional scalar decomposition: k = (-1)^neg0 k0 + (-1)^neg1 k1 * eig
/// (mod r), with k0, k1 < ~2^131. GLS decompositions are always non-negative.
struct EndoDecomp {
  bigint::U256 k0;
  bigint::U256 k1;
  bool neg0 = false;
  bool neg1 = false;
};

/// GLV split of k (any U256; reduced mod r internally).
EndoDecomp decompose_glv(const bigint::U256& k);
/// GLS split of k (any U256; reduced mod r internally).
EndoDecomp decompose_gls(const bigint::U256& k);

/// k*P via GLV (valid for any P in G1; k reduced mod r, which agrees with
/// plain scalar_mul because G1 has order r).
G1 g1_mul_endo(const G1& p, const bigint::U256& k);
/// k*Q via GLS. Q must lie in the order-r subgroup (true for every G2 value
/// produced by this library; untrusted twist points outside the subgroup
/// must use scalar_mul).
G2 g2_mul_endo(const G2& q, const bigint::U256& k);

}  // namespace ibbe::ec
