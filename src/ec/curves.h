// Concrete curve instantiations (BN254 G1/G2, NIST P-256), compressed-point
// serialization, and hash-to-curve for G1.
#pragma once

#include <optional>
#include <span>
#include <string_view>

#include "ec/curve.h"
#include "field/fp2.h"
#include "field/fields.h"
#include "util/bytes.h"

namespace ibbe::ec {

struct G1Params {
  using Field = field::Fp;
  static const Field& a();
  static bool a_is_zero() { return true; }
  static const Field& b();       // 3
  static const Field& gen_x();   // 1
  static const Field& gen_y();   // 2
};

struct G2Params {
  using Field = field::Fp2;
  static const Field& a();
  static bool a_is_zero() { return true; }
  static const Field& b();       // 3 / xi (D-type twist)
  static const Field& gen_x();
  static const Field& gen_y();
};

struct P256Params {
  using Field = field::P256Fp;
  static const Field& a();       // -3
  static bool a_is_zero() { return false; }
  static const Field& b();
  static const Field& gen_x();
  static const Field& gen_y();
};

using G1 = JacobianPoint<G1Params>;
using G2 = JacobianPoint<G2Params>;
using P256Point = JacobianPoint<P256Params>;

// Fast-path routing for scalar-times-group-element (defined in msm.cpp;
// declared here so every translation unit that multiplies picks them up):
// generator multiplications use precomputed fixed-base comb tables (G2's is
// the 4-dim psi-split G2Comb4), other G1 points go through the 2-dim GLV
// endomorphism decomposition and other G2 points through the 4-dim GLS psi
// split (ec/glv.h), and other P-256 points use wNAF. The generic
// scalar_mul/scalar_mul_wnaf remain available as endomorphism-free oracles.
template <>
template <>
JacobianPoint<G1Params> JacobianPoint<G1Params>::mul(const field::Fr& k) const;
template <>
template <>
JacobianPoint<G2Params> JacobianPoint<G2Params>::mul(const field::Fr& k) const;
template <>
template <>
JacobianPoint<P256Params> JacobianPoint<P256Params>::mul(
    const field::P256Fr& k) const;

// --------------------------------------------------------------------------
// Compressed serialization.
//
// G1 / P256: 33 bytes = flag || x. Flag: 0x00 infinity (x all-zero),
//            0x02 even y, 0x03 odd y.
// G2:        65 bytes = flag || x.c0 || x.c1, same flag convention with the
//            Fp2 "parity" defined in Fp2::is_odd().

constexpr std::size_t g1_serialized_size = 33;
constexpr std::size_t g2_serialized_size = 65;
constexpr std::size_t p256_serialized_size = 33;

util::Bytes g1_to_bytes(const G1& p);
/// Throws util::DeserializeError on malformed input or off-curve points.
G1 g1_from_bytes(std::span<const std::uint8_t> data);

util::Bytes g2_to_bytes(const G2& p);
/// `subgroup_check` additionally verifies r*P = O (the twist has composite
/// order, so untrusted inputs should keep it on).
G2 g2_from_bytes(std::span<const std::uint8_t> data, bool subgroup_check = true);

util::Bytes p256_to_bytes(const P256Point& p);
P256Point p256_from_bytes(std::span<const std::uint8_t> data);

// --------------------------------------------------------------------------
/// Hash-to-G1 by try-and-increment over SHA-256(msg || counter). G1 has
/// cofactor 1 on BN curves, so no cofactor clearing is required. Used by the
/// Boneh–Franklin HE-IBE baseline.
G1 hash_to_g1(std::string_view msg);

/// Order of G1/G2/GT (the BN254 scalar-field modulus) as a U256.
const bigint::U256& bn_group_order();

}  // namespace ibbe::ec
