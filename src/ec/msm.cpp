#include "ec/msm.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "ec/glv.h"

namespace ibbe::ec {

using bigint::U256;
using field::Fp2;
using field::Fr;

namespace {

/// Shared shape of the G1/G2 endo-MSM wrappers: split each scalar into two
/// half-length parts, pair the second with the endomorphism image of the
/// base, and feed the doubled list to the generic engine (whose shared
/// ladder is now ~128 doublings instead of ~256).
template <typename Point, typename Decompose, typename ApplyEndo>
Point endo_msm(std::span<const Point> bases, std::span<const Fr> scalars,
               Decompose&& decompose, ApplyEndo&& endo) {
  const std::size_t n = std::min(bases.size(), scalars.size());
  std::vector<Point> pts;
  std::vector<U256> subs;
  pts.reserve(2 * n);
  subs.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    if (scalars[i].is_zero() || bases[i].is_infinity()) continue;
    EndoDecomp d = decompose(scalars[i].to_u256());
    if (!d.k0.is_zero()) {
      pts.push_back(d.neg0 ? bases[i].neg() : bases[i]);
      subs.push_back(d.k0);
    }
    if (!d.k1.is_zero()) {
      Point e = endo(bases[i]);
      pts.push_back(d.neg1 ? e.neg() : e);
      subs.push_back(d.k1);
    }
  }
  return msm_u256(std::span<const Point>(pts), std::span<const U256>(subs));
}

}  // namespace

G1 msm(std::span<const G1> bases, std::span<const Fr> scalars) {
  return endo_msm(bases, scalars, decompose_glv,
                  [](const G1& p) { return apply_phi(p); });
}

G2 msm(std::span<const G2> bases, std::span<const Fr> scalars) {
  // 4-dim psi split: every (base, scalar) pair becomes up to four
  // (psi^i(base), ~65-bit sub-scalar) pairs, so the generic engine's shared
  // ladder (Straus) or window count (Pippenger) drops to a quarter.
  const std::size_t n = std::min(bases.size(), scalars.size());
  std::vector<G2> pts;
  std::vector<U256> subs;
  pts.reserve(4 * n);
  subs.reserve(4 * n);
  for (std::size_t i = 0; i < n; ++i) {
    if (scalars[i].is_zero() || bases[i].is_infinity()) continue;
    bigint::Decomp4 d = decompose_gls4(scalars[i].to_u256());
    G2 img = bases[i];
    for (std::size_t j = 0; j < 4; ++j) {
      if (j > 0) img = apply_psi(img);
      if (d.k[j].is_zero()) continue;
      pts.push_back(d.neg[j] ? img.neg() : img);
      subs.push_back(d.k[j]);
    }
  }
  return msm_u256(std::span<const G2>(pts), std::span<const U256>(subs));
}

// ------------------------------------------------------------- G2PowersMsm

G2PowersMsm::G2PowersMsm(std::span<const G2> bases, unsigned window)
    : w_(window), per_(std::size_t{1} << (window - 2)), n_(bases.size()) {
  std::vector<G2> jac;
  jac.reserve(n_ * per_);
  for (const G2& base : bases) {
    msm_detail::append_odd_multiples(jac, base, per_);
  }
  tbl_[0] = G2::batch_to_affine(jac);
  for (std::size_t i = 1; i < 4; ++i) {
    tbl_[i].reserve(tbl_[0].size());
    for (const auto& e : tbl_[i - 1]) tbl_[i].push_back(apply_psi(e));
  }
}

G2 G2PowersMsm::msm(std::span<const Fr> coefs) const {
  struct Term {
    const AffinePt<Fp2>* row;
    bool flip;  // sub-scalar sign, folded into the digit sign when applied
    std::vector<int> digits;
  };
  std::vector<Term> terms;
  const std::size_t m = std::min(n_, coefs.size());
  std::size_t maxlen = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (coefs[i].is_zero()) continue;
    bigint::Decomp4 d = decompose_gls4(coefs[i].to_u256());
    for (std::size_t j = 0; j < 4; ++j) {
      if (d.k[j].is_zero()) continue;
      terms.push_back({&tbl_[j][i * per_], d.neg[j], wnaf_digits(d.k[j], w_)});
      maxlen = std::max(maxlen, terms.back().digits.size());
    }
  }
  G2 acc = G2::infinity();
  for (std::size_t b = maxlen; b-- > 0;) {
    acc = acc.dbl();
    for (const Term& t : terms) {
      if (b >= t.digits.size() || t.digits[b] == 0) continue;
      int v = t.digits[b];
      AffinePt<Fp2> e = t.row[static_cast<std::size_t>(v > 0 ? v : -v) / 2];
      if ((v < 0) != t.flip) e.y = e.y.neg();
      acc = acc.add_mixed(e);
    }
  }
  return acc;
}

// ------------------------------------------------------------------ G2Comb4

G2Comb4::G2Comb4(const G2& base, unsigned window)
    : w_(window),
      wins_((bn_psi_lattice().max_sub_bits() + window - 1) / window),
      per_((std::size_t{1} << window) - 1) {
  std::vector<G2> jac;
  jac.reserve(std::size_t{wins_} * per_);
  G2 shifted = base;  // 2^(w win) * base
  for (unsigned win = 0; win < wins_; ++win) {
    G2 m = shifted;
    for (std::size_t d = 1; d <= per_; ++d) {
      jac.push_back(m);
      if (d < per_) m += shifted;
    }
    for (unsigned j = 0; j < w_; ++j) shifted = shifted.dbl();
  }
  auto flat = G2::batch_to_affine(jac);
  const std::size_t stride = flat.size();
  tbl_.resize(4 * stride);
  std::copy(flat.begin(), flat.end(), tbl_.begin());
  for (std::size_t i = 1; i < 4; ++i) {
    for (std::size_t e = 0; e < stride; ++e) {
      tbl_[i * stride + e] = apply_psi(tbl_[(i - 1) * stride + e]);
    }
  }
}

G2 G2Comb4::mul(const bigint::U256& k) const {
  const bigint::Decomp4 d = decompose_gls4(k);
  const std::size_t stride = std::size_t{wins_} * per_;
  G2 acc = G2::infinity();
  for (std::size_t i = 0; i < 4; ++i) {
    if (d.k[i].bit_length() > wins_ * w_) {
      throw std::logic_error("g2comb4: sub-scalar exceeds the comb span");
    }
    for (unsigned win = 0; win < wins_; ++win) {
      unsigned dig = window_value(d.k[i], win * w_, w_);
      if (!dig) continue;
      AffinePt<Fp2> e = tbl_[i * stride + win * per_ + dig - 1];
      if (d.neg[i]) e.y = e.y.neg();
      acc = acc.add_mixed(e);
    }
  }
  return acc;
}

const G2Comb4& g2_generator_comb4() {
  static const G2Comb4 comb(G2::generator());
  return comb;
}

// ----------------------------------------------- JacobianPoint::mul routing
//
// Declared in curves.h so every call site sees them: generator
// multiplications hit the fixed-base comb tables (the 4-dim psi-split one
// for G2); arbitrary G1 points go through the 2-dim GLV decomposition,
// arbitrary G2 points through the 4-dim GLS split; arbitrary P-256 points
// use wNAF.

template <>
template <>
JacobianPoint<G1Params> JacobianPoint<G1Params>::mul(const field::Fr& k) const {
  if (*this == generator()) return generator_table<G1>().mul(k.to_u256());
  return g1_mul_endo(*this, k.to_u256());
}

template <>
template <>
JacobianPoint<G2Params> JacobianPoint<G2Params>::mul(const field::Fr& k) const {
  if (*this == generator()) return g2_generator_comb4().mul(k.to_u256());
  return g2_mul_endo4(*this, k.to_u256());
}

template <>
template <>
JacobianPoint<P256Params> JacobianPoint<P256Params>::mul(
    const field::P256Fr& k) const {
  if (*this == generator()) {
    return generator_table<P256Point>().mul(k.to_u256());
  }
  return scalar_mul_wnaf(k.to_u256(), 5);
}

}  // namespace ibbe::ec
