#include "ec/msm.h"

#include <cstdlib>

#include "ec/glv.h"

namespace ibbe::ec {

using bigint::U256;
using field::Fp2;
using field::Fr;

namespace {

/// Shared shape of the G1/G2 endo-MSM wrappers: split each scalar into two
/// half-length parts, pair the second with the endomorphism image of the
/// base, and feed the doubled list to the generic engine (whose shared
/// ladder is now ~128 doublings instead of ~256).
template <typename Point, typename Decompose, typename ApplyEndo>
Point endo_msm(std::span<const Point> bases, std::span<const Fr> scalars,
               Decompose&& decompose, ApplyEndo&& endo) {
  const std::size_t n = std::min(bases.size(), scalars.size());
  std::vector<Point> pts;
  std::vector<U256> subs;
  pts.reserve(2 * n);
  subs.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    if (scalars[i].is_zero() || bases[i].is_infinity()) continue;
    EndoDecomp d = decompose(scalars[i].to_u256());
    if (!d.k0.is_zero()) {
      pts.push_back(d.neg0 ? bases[i].neg() : bases[i]);
      subs.push_back(d.k0);
    }
    if (!d.k1.is_zero()) {
      Point e = endo(bases[i]);
      pts.push_back(d.neg1 ? e.neg() : e);
      subs.push_back(d.k1);
    }
  }
  return msm_u256(std::span<const Point>(pts), std::span<const U256>(subs));
}

}  // namespace

G1 msm(std::span<const G1> bases, std::span<const Fr> scalars) {
  return endo_msm(bases, scalars, decompose_glv,
                  [](const G1& p) { return apply_phi(p); });
}

G2 msm(std::span<const G2> bases, std::span<const Fr> scalars) {
  return endo_msm(bases, scalars, decompose_gls,
                  [](const G2& p) { return apply_psi(p); });
}

// ------------------------------------------------------------- G2PowersMsm

G2PowersMsm::G2PowersMsm(std::span<const G2> bases, unsigned window)
    : w_(window), per_(std::size_t{1} << (window - 2)), n_(bases.size()) {
  std::vector<G2> jac;
  jac.reserve(n_ * per_);
  for (const G2& base : bases) {
    msm_detail::append_odd_multiples(jac, base, per_);
  }
  tbl_ = G2::batch_to_affine(jac);
  tbl_psi_.reserve(tbl_.size());
  for (const auto& e : tbl_) tbl_psi_.push_back(apply_psi(e));
}

G2 G2PowersMsm::msm(std::span<const Fr> coefs) const {
  struct Term {
    const AffinePt<Fp2>* row;
    std::vector<int> digits;
  };
  std::vector<Term> terms;
  const std::size_t m = std::min(n_, coefs.size());
  std::size_t maxlen = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (coefs[i].is_zero()) continue;
    EndoDecomp d = decompose_gls(coefs[i].to_u256());
    if (!d.k0.is_zero()) {
      terms.push_back({&tbl_[i * per_], wnaf_digits(d.k0, w_)});
      maxlen = std::max(maxlen, terms.back().digits.size());
    }
    if (!d.k1.is_zero()) {
      terms.push_back({&tbl_psi_[i * per_], wnaf_digits(d.k1, w_)});
      maxlen = std::max(maxlen, terms.back().digits.size());
    }
  }
  G2 acc = G2::infinity();
  for (std::size_t b = maxlen; b-- > 0;) {
    acc = acc.dbl();
    for (const Term& t : terms) {
      if (b >= t.digits.size() || t.digits[b] == 0) continue;
      int v = t.digits[b];
      AffinePt<Fp2> e = t.row[static_cast<std::size_t>(v > 0 ? v : -v) / 2];
      if (v < 0) e.y = e.y.neg();
      acc = acc.add_mixed(e);
    }
  }
  return acc;
}

// ----------------------------------------------- JacobianPoint::mul routing
//
// Declared in curves.h so every call site sees them: generator
// multiplications hit the fixed-base comb tables; arbitrary G1/G2 points go
// through the GLV/GLS decomposition; arbitrary P-256 points use wNAF.

template <>
template <>
JacobianPoint<G1Params> JacobianPoint<G1Params>::mul(const field::Fr& k) const {
  if (*this == generator()) return generator_table<G1>().mul(k.to_u256());
  return g1_mul_endo(*this, k.to_u256());
}

template <>
template <>
JacobianPoint<G2Params> JacobianPoint<G2Params>::mul(const field::Fr& k) const {
  if (*this == generator()) return generator_table<G2>().mul(k.to_u256());
  return g2_mul_endo(*this, k.to_u256());
}

template <>
template <>
JacobianPoint<P256Params> JacobianPoint<P256Params>::mul(
    const field::P256Fr& k) const {
  if (*this == generator()) {
    return generator_table<P256Point>().mul(k.to_u256());
  }
  return scalar_mul_wnaf(k.to_u256(), 5);
}

}  // namespace ibbe::ec
