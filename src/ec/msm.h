// Multi-scalar multiplication engine and fixed-base precomputation.
//
// Three tiers, picked by workload shape:
//
//   msm_u256 / msm      — one-shot Σ k_i P_i. Straus interleaved wNAF with
//                         batch-normalized odd-multiple tables for n <= 32,
//                         Pippenger bucket aggregation above. The Fr
//                         overloads first split every scalar with GLV (G1,
//                         2-dim) / GLS (G2, 4-dim psi split), so the shared
//                         doubling ladder is half / quarter length.
//   FixedBaseTable      — single fixed base: a full windowed comb
//                         tbl[i][d] = d 2^(wi) B, so one multiplication is
//                         ~64 mixed additions and zero doublings.
//   G2Comb4             — the 4-dim variant for fixed G2 bases (the h
//                         generator): the psi split shrinks the comb span to
//                         72 bits, which affords a window twice as wide —
//                         ~36 mixed additions per mul, for a ~10x larger
//                         one-time table (~1.2 MB).
//   G2PowersMsm         — many fixed G2 bases (the IBBE public key's
//                         h^(gamma^i) powers): per-base affine odd-multiple
//                         tables plus their psi/psi^2/psi^3 images, consumed
//                         by a 4-dim-GLS-decomposed Straus loop.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "bigint/u256.h"
#include "ec/curves.h"
#include "ec/wnaf.h"
#include "field/fields.h"
#include "util/thread_pool.h"

namespace ibbe::ec {

/// Bits [lo, lo + width) of k as an unsigned value (width <= 32).
inline unsigned window_value(const bigint::U256& k, unsigned lo,
                             unsigned width) {
  if (lo >= 256) return 0;
  unsigned idx = lo / 64, off = lo % 64;
  std::uint64_t v = k.limb[idx] >> off;
  if (off + width > 64 && idx + 1 < 4) v |= k.limb[idx + 1] << (64 - off);
  return static_cast<unsigned>(v) & ((1u << width) - 1);
}

namespace msm_detail {

/// Appends the first `per` odd multiples base, 3*base, ..., (2 per - 1)*base
/// to `jac` (the wNAF table layout shared by Straus and G2PowersMsm).
template <typename Point>
void append_odd_multiples(std::vector<Point>& jac, const Point& base,
                          std::size_t per) {
  Point m = base;
  Point twice = base.dbl();
  for (std::size_t d = 0; d < per; ++d) {
    jac.push_back(m);
    m += twice;
  }
}

inline unsigned max_bit_length(std::span<const bigint::U256> scalars,
                               std::size_t n) {
  unsigned bits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    bits = std::max(bits, scalars[i].bit_length());
  }
  return bits;
}

/// Straus: one shared doubling ladder, per-point wNAF digits against
/// batch-normalized odd-multiple tables (one field inversion total).
template <typename Point>
Point straus(std::span<const Point> bases,
             std::span<const bigint::U256> scalars, std::size_t n) {
  using Field = typename Point::Field;
  constexpr unsigned kWindow = 4;
  constexpr std::size_t kPer = 4;  // odd multiples 1,3,5,7

  std::vector<std::vector<int>> digits(n);
  std::size_t maxlen = 0;
  for (std::size_t i = 0; i < n; ++i) {
    digits[i] = wnaf_digits(scalars[i], kWindow);
    maxlen = std::max(maxlen, digits[i].size());
  }
  std::vector<Point> jac;
  jac.reserve(n * kPer);
  for (std::size_t i = 0; i < n; ++i) {
    append_odd_multiples(jac, bases[i], kPer);
  }
  auto tbl = Point::batch_to_affine(jac);

  Point acc = Point::infinity();
  for (std::size_t b = maxlen; b-- > 0;) {
    acc = acc.dbl();
    for (std::size_t i = 0; i < n; ++i) {
      if (b >= digits[i].size() || digits[i][b] == 0) continue;
      int v = digits[i][b];
      AffinePt<Field> e =
          tbl[i * kPer + static_cast<std::size_t>(v > 0 ? v : -v) / 2];
      if (v < 0) e.y = e.y.neg();
      acc = acc.add_mixed(e);
    }
  }
  return acc;
}

/// Pippenger: per-window buckets with a running-sum sweep. Window width
/// grows with n, so the per-point cost approaches one addition per window.
///
/// The per-window bucket accumulations are independent of the doubling
/// ladder, so they fan out to the thread pool (one slot per window, each
/// task owning a private bucket array); the c-doubling fold that combines
/// the window sums stays serial and performs exactly the additions the
/// serial interleaved loop would, in its order — the result is
/// bitwise-identical at any thread count.
template <typename Point>
Point pippenger(std::span<const Point> bases,
                std::span<const bigint::U256> scalars, std::size_t n,
                unsigned max_bits) {
  unsigned nbits = 0;
  for (std::size_t v = n; v > 0; v >>= 1) ++nbits;
  const unsigned c = std::min(12u, std::max(4u, nbits - 2));
  const unsigned wins = (max_bits + c - 1) / c;

  std::vector<Point> window_sums(wins);
  util::ThreadPool::global().parallel_for(0, wins, 1, [&](std::size_t win) {
    std::vector<Point> buckets((std::size_t{1} << c) - 1, Point::infinity());
    for (std::size_t i = 0; i < n; ++i) {
      unsigned d = window_value(scalars[i], static_cast<unsigned>(win) * c, c);
      if (d) buckets[d - 1] += bases[i];
    }
    // Σ d * bucket[d] via the running-sum identity.
    Point run = Point::infinity();
    Point sum = Point::infinity();
    for (std::size_t j = buckets.size(); j-- > 0;) {
      run += buckets[j];
      sum += run;
    }
    window_sums[win] = sum;
  });

  Point acc = Point::infinity();
  for (unsigned win = wins; win-- > 0;) {
    if (win + 1 != wins) {
      for (unsigned j = 0; j < c; ++j) acc = acc.dbl();
    }
    acc += window_sums[win];
  }
  return acc;
}

}  // namespace msm_detail

/// Σ scalars[i] * bases[i] over min(sizes) terms; plain integer semantics
/// (works for any curve instantiation, no subgroup assumption).
template <typename Point>
Point msm_u256(std::span<const Point> bases,
               std::span<const bigint::U256> scalars) {
  const std::size_t n = std::min(bases.size(), scalars.size());
  if (n == 0) return Point::infinity();
  const unsigned max_bits = msm_detail::max_bit_length(scalars, n);
  if (max_bits == 0) return Point::infinity();
  if (n <= 32) return msm_detail::straus(bases, scalars, n);
  return msm_detail::pippenger(bases, scalars, n, max_bits);
}

/// Endomorphism-decomposed MSM: every scalar is split GLV (G1, two
/// half-length sub-scalars) / 4-dim GLS (G2, four quarter-length
/// sub-scalars) first, shrinking the shared doubling ladder accordingly
/// (and, on the Pippenger path, the per-point window count). Defined in
/// msm.cpp. G2 bases must lie in the order-r subgroup.
G1 msm(std::span<const G1> bases, std::span<const field::Fr> scalars);
G2 msm(std::span<const G2> bases, std::span<const field::Fr> scalars);

/// Full windowed comb for one fixed base: tbl[i][d] = d * 2^(w i) * base,
/// batch-normalized to affine. A multiplication is ceil(256/w) mixed
/// additions and no doublings.
template <typename Point>
class FixedBaseTable {
 public:
  using Field = typename Point::Field;

  explicit FixedBaseTable(const Point& base, unsigned window = 4)
      : w_(window), wins_((256 + window - 1) / window) {
    const unsigned per = (1u << w_) - 1;
    std::vector<Point> jac;
    jac.reserve(std::size_t{wins_} * per);
    Point shifted = base;  // 2^(w i) * base
    for (unsigned i = 0; i < wins_; ++i) {
      Point m = shifted;
      for (unsigned d = 1; d <= per; ++d) {
        jac.push_back(m);
        if (d < per) m += shifted;
      }
      for (unsigned j = 0; j < w_; ++j) shifted = shifted.dbl();
    }
    tbl_ = Point::batch_to_affine(jac);
  }

  [[nodiscard]] Point mul(const bigint::U256& k) const {
    const unsigned per = (1u << w_) - 1;
    Point acc = Point::infinity();
    for (unsigned i = 0; i < wins_; ++i) {
      unsigned d = window_value(k, i * w_, w_);
      if (d) acc = acc.add_mixed(tbl_[std::size_t{i} * per + d - 1]);
    }
    return acc;
  }

 private:
  unsigned w_;
  unsigned wins_;
  std::vector<AffinePt<Field>> tbl_;
};

/// Lazily-built comb table for the group generator (thread-safe static).
template <typename Point>
const FixedBaseTable<Point>& generator_table() {
  static const FixedBaseTable<Point> tbl(Point::generator());
  return tbl;
}

/// Prepared multi-base MSM over fixed G2 points in the order-r subgroup
/// (the IBBE public key's h^(gamma^i) powers): per-base affine odd-multiple
/// tables plus their psi/psi^2/psi^3 images, consumed by a 4-dim-GLS-split
/// Straus loop whose shared ladder is ~64 doublings. Build cost ~9 G2
/// operations per base (the psi tables are coordinate maps, not additions),
/// one field inversion total.
class G2PowersMsm {
 public:
  explicit G2PowersMsm(std::span<const G2> bases, unsigned window = 5);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Σ coefs[i] * bases[i] over min(size(), coefs.size()) terms; zero
  /// coefficients are skipped.
  [[nodiscard]] G2 msm(std::span<const field::Fr> coefs) const;

 private:
  unsigned w_;
  std::size_t per_;  // odd multiples per base = 2^(w-2)
  std::size_t n_;
  // tbl_[i] is the psi^i image of the base table; tbl_[i][b * per_ + m] =
  // psi^i((2m + 1) bases[b]).
  std::array<std::vector<AffinePt<field::Fp2>>, 4> tbl_;
};

/// Four-dimensional psi-split fixed-base comb for a G2 point in the order-r
/// subgroup. FixedBaseTable must cover all 256 scalar bits; here the scalar
/// is first decomposed into four sub-scalars of at most 72 bits
/// (bn_psi_lattice().max_sub_bits()), so the comb spans 72 bits and can
/// afford a window twice as wide: with the default w = 8, a multiplication
/// is at most 4 * 9 = 36 mixed additions (vs ~64) and still zero
/// doublings. The price is table size — 4 psi-tables x 9 windows x 255
/// entries = 9180 affine points (~1.2 MB), ~10x the w = 4 FixedBaseTable,
/// which is why this is reserved for long-lived bases like the generator.
/// Tables for psi^1..3 are coordinate-mapped images of the base table, so
/// build cost stays ~wins * 2^w additions plus one field inversion.
class G2Comb4 {
 public:
  explicit G2Comb4(const G2& base, unsigned window = 8);

  /// k * base; any U256 k (reduced mod r by the decomposition, which agrees
  /// with plain scalar_mul because the subgroup has order r).
  [[nodiscard]] G2 mul(const bigint::U256& k) const;

 private:
  unsigned w_;
  unsigned wins_;    // ceil(max_sub_bits / w)
  std::size_t per_;  // digits per window = 2^w - 1
  // tbl_[(i * wins_ + win) * per_ + (d - 1)] = d * 2^(w win) * psi^i(base)
  std::vector<AffinePt<field::Fp2>> tbl_;
};

/// Lazily-built 4-dim comb for the G2 generator h (thread-safe static); the
/// G2 analogue of generator_table<G1>().
const G2Comb4& g2_generator_comb4();

}  // namespace ibbe::ec
