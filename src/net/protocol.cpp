#include "net/protocol.h"

#include <stdexcept>

#include "crypto/hmac.h"
#include "util/errors.h"

namespace ibbe::net {

using util::ByteReader;
using util::Bytes;
using util::ByteWriter;

// ---------------------------------------------------------------------------
// Handshake records
// ---------------------------------------------------------------------------

Bytes ClientHello::to_bytes() const {
  ByteWriter w;
  w.u32(version);
  w.blob(eph_pub);
  w.u64(session_id);
  w.blob(resume_proof);
  return w.take();
}

ClientHello ClientHello::from_bytes(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  ClientHello h;
  h.version = r.u32();
  h.eph_pub = r.blob();
  h.session_id = r.u64();
  h.resume_proof = r.blob();
  r.expect_end();
  return h;
}

Bytes ServerHello::to_bytes() const {
  ByteWriter w;
  w.u8(outcome);
  w.blob(eph_pub);
  w.u64(session_id);
  w.blob(signature);
  return w.take();
}

ServerHello ServerHello::from_bytes(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  ServerHello h;
  h.outcome = r.u8();
  h.eph_pub = r.blob();
  h.session_id = r.u64();
  h.signature = r.blob();
  r.expect_end();
  return h;
}

Bytes handshake_transcript(std::span<const std::uint8_t> client_eph,
                           std::span<const std::uint8_t> server_eph,
                           std::uint64_t session_id, std::uint8_t outcome) {
  ByteWriter w;
  w.str("ibbe-sgx:net:transcript:v1");
  w.blob(client_eph);
  w.blob(server_eph);
  w.u64(session_id);
  w.u8(outcome);
  return w.take();
}

SessionKeys derive_session_keys(const ec::P256Point& shared,
                                std::span<const std::uint8_t> client_eph,
                                std::span<const std::uint8_t> server_eph) {
  auto affine = shared.to_affine();
  if (!affine) {
    throw util::IntegrityError("net handshake: degenerate ECDH share");
  }
  auto x = affine->first.to_be_bytes();
  Bytes ikm(x.begin(), x.end());
  ikm.insert(ikm.end(), client_eph.begin(), client_eph.end());
  ikm.insert(ikm.end(), server_eph.begin(), server_eph.end());
  SessionKeys keys;
  keys.client_to_server = crypto::hkdf({}, ikm, "ibbe-sgx:net:c2s:v1", 32);
  keys.server_to_client = crypto::hkdf({}, ikm, "ibbe-sgx:net:s2c:v1", 32);
  keys.resume_secret = crypto::hkdf({}, ikm, "ibbe-sgx:net:resume:v1", 32);
  return keys;
}

Bytes make_resume_proof(std::span<const std::uint8_t> resume_secret,
                        std::span<const std::uint8_t> eph_pub) {
  auto mac = crypto::hmac_sha256(resume_secret, eph_pub);
  return Bytes(mac.begin(), mac.end());
}

// ---------------------------------------------------------------------------
// SessionCipher
// ---------------------------------------------------------------------------

namespace {

/// 12-byte nonce: 4 direction-tag bytes || 8-byte big-endian sequence. The
/// same bytes double as AAD so the counter is authenticated, not just used.
std::array<std::uint8_t, 12> frame_nonce(char direction, std::uint64_t seq) {
  std::array<std::uint8_t, 12> n{};
  n[0] = 'f';
  n[1] = 'r';
  n[2] = 'm';
  n[3] = static_cast<std::uint8_t>(direction);
  for (int i = 0; i < 8; ++i) {
    n[4 + i] = static_cast<std::uint8_t>(seq >> (56 - 8 * i));
  }
  return n;
}

}  // namespace

SessionCipher::SessionCipher(std::span<const std::uint8_t> key32,
                             char direction)
    : gcm_(key32), direction_(direction) {}

Bytes SessionCipher::seal(std::uint64_t seq,
                          std::span<const std::uint8_t> payload) const {
  auto nonce = frame_nonce(direction_, seq);
  return gcm_.seal(nonce, payload, nonce);
}

std::optional<Bytes> SessionCipher::open(
    std::uint64_t seq, std::span<const std::uint8_t> sealed) const {
  auto nonce = frame_nonce(direction_, seq);
  return gcm_.open(nonce, sealed, nonce);
}

// ---------------------------------------------------------------------------
// Request / Response
// ---------------------------------------------------------------------------

Bytes Request::to_bytes() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(op));
  w.u64(id);
  w.str(path);
  w.blob(value);
  w.u64(expected);
  w.u64(since);
  w.u64(timeout_ms);
  return w.take();
}

Request Request::from_bytes(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  Request q;
  q.op = static_cast<Op>(r.u8());
  q.id = r.u64();
  q.path = r.str();
  q.value = r.blob();
  q.expected = r.u64();
  q.since = r.u64();
  q.timeout_ms = r.u64();
  r.expect_end();
  return q;
}

Bytes Response::to_bytes() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(status));
  w.u64(id);
  w.blob(value);
  w.u64(version);
  w.u8(flag ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(names.size()));
  for (const auto& n : names) w.str(n);
  w.u64(stats.puts);
  w.u64(stats.gets);
  w.u64(stats.erases);
  w.u64(stats.long_polls);
  w.u64(stats.bytes_uploaded);
  w.u64(stats.bytes_downloaded);
  w.u64(stats.faults_injected);
  w.u64(stats.crashes_injected);
  w.u64(bytes);
  w.str(error);
  return w.take();
}

Response Response::from_bytes(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  Response p;
  p.status = static_cast<Status>(r.u8());
  p.id = r.u64();
  p.value = r.blob();
  p.version = r.u64();
  p.flag = r.u8() != 0;
  std::size_t n = r.count(/*min_element_bytes=*/4);
  p.names.reserve(n);
  for (std::size_t i = 0; i < n; ++i) p.names.push_back(r.str());
  p.stats.puts = r.u64();
  p.stats.gets = r.u64();
  p.stats.erases = r.u64();
  p.stats.long_polls = r.u64();
  p.stats.bytes_uploaded = r.u64();
  p.stats.bytes_downloaded = r.u64();
  p.stats.faults_injected = r.u64();
  p.stats.crashes_injected = r.u64();
  p.bytes = r.u64();
  p.error = r.str();
  r.expect_end();
  return p;
}

void throw_if_store_fault(const Response& r) {
  switch (r.status) {
    case Status::error_transient:
      throw util::TransientError("remote store: " + r.error);
    case Status::error_crash:
      throw util::CrashError("remote store: " + r.error);
    case Status::error_integrity:
      throw util::IntegrityError("remote store: " + r.error);
    default:
      return;
  }
}

}  // namespace ibbe::net
