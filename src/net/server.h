// Networked cloud front-end: a TCP server that exposes a CloudStore over the
// framed protocol in net/protocol.h.
//
// Shape follows the classic multi-client session server (one ebftpd-style
// thread per accepted connection; the listener thread only accepts and
// reaps). Each connection runs the handshake, expands its per-session AEAD
// contexts once, then serves request/response frames until EOF or shutdown.
//
// Robustness properties the tests hold this to:
//
//   * overload shedding, never silent hangs — a connection beyond
//     max_sessions is answered with a signed `busy` ServerHello and closed;
//     a request that cannot get a request slot (or a long_poll that cannot
//     get a poll slot) is answered with Status::busy immediately. Nothing
//     queues unboundedly, nothing waits silently;
//   * bounded work per session — one in-flight request per connection (the
//     protocol is strictly request/response per session), long-polls clamped
//     to max_poll and served in short slices so shutdown is never blocked
//     behind a parked watcher;
//   * reconnect-with-resume — when a connection dies, its session state
//     (resume secret + mutation dedup cache) is parked, bounded FIFO. A
//     client that reconnects with a valid resume proof gets the state back,
//     so a retried mutation whose first response was lost is answered from
//     the dedup cache instead of being re-executed. A resume miss (evicted,
//     or server restarted) degrades to a fresh session — safe, because every
//     ambiguous mutation above this layer is CAS-guarded (the PR 6 ambiguity
//     protocol);
//   * drain on shutdown — stop() closes the listener, lets every session
//     finish its in-flight response (sessions poll a stop flag between
//     frames and between long-poll slices) and joins all threads.
//
// Store-side faults (the backing store may be a FaultInjectingStore or a
// MaliciousStore behind verification layers) are forwarded to the client as
// typed error statuses, so the util/errors.h taxonomy survives the wire.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "cloud/store.h"
#include "crypto/drbg.h"
#include "net/protocol.h"
#include "net/transport.h"
#include "pki/ecdsa.h"

namespace ibbe::net {

struct NetServerConfig {
  /// Live connections beyond this are shed with a signed busy ServerHello.
  std::size_t max_sessions = 512;
  /// Hard cap on connection THREADS (admitted sessions plus connections
  /// still in handshake): beyond it, an accepted fd is closed immediately
  /// and no thread is spawned, so a pre-handshake connection flood cannot
  /// create unbounded threads each parked for handshake_timeout.
  /// 0 = derive as max_sessions * 2 + 16.
  std::size_t max_connections = 0;
  /// Disconnected-but-resumable sessions kept parked (FIFO eviction).
  std::size_t max_parked_sessions = 128;
  /// Concurrent requests actually executing against the store; a session
  /// that cannot take a slot gets Status::busy, it does not wait.
  std::size_t request_slots = 64;
  /// Concurrent long-polls parked against the store.
  std::size_t poll_slots = 1024;
  /// Server-side clamp on a long_poll request's timeout.
  std::chrono::milliseconds max_poll{30'000};
  /// Mutation responses remembered per session for retry dedup.
  std::size_t dedup_cache_entries = 256;
  /// Budget for the ClientHello to arrive on a fresh connection.
  std::chrono::milliseconds handshake_timeout{2'000};
  /// 0 = identity key from OS entropy; nonzero = deterministic (tests).
  std::uint64_t identity_seed = 0;
};

struct NetServerStats {
  std::uint64_t sessions_accepted = 0;
  std::uint64_t sessions_resumed = 0;
  std::uint64_t resume_misses = 0;    // proof invalid or state evicted
  std::uint64_t busy_handshakes = 0;  // shed with a signed busy ServerHello
  std::uint64_t shed_connections = 0;  // closed at accept: connection cap
  std::uint64_t busy_requests = 0;    // Status::busy for a request slot
  std::uint64_t busy_polls = 0;       // Status::busy for a poll slot
  std::uint64_t requests_served = 0;
  std::uint64_t dedup_hits = 0;       // mutations answered from cache
  std::uint64_t bad_frames = 0;       // AEAD failures / malformed frames
  std::uint64_t dropped_dup_frames = 0;  // stale sequence numbers discarded
  // Point-in-time gauges (snapshotted by stats()), not counters.
  std::uint64_t live_sessions = 0;     // admitted sessions holding a slot
  std::uint64_t live_connections = 0;  // connection threads incl. handshakes
};

class NetServer {
 public:
  explicit NetServer(cloud::CloudStore& store, NetServerConfig cfg = {});
  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  /// Compressed P-256 ECDSA public key clients pin (the service identity).
  [[nodiscard]] util::Bytes identity_key() const {
    return identity_.public_key_bytes();
  }
  [[nodiscard]] NetServerStats stats() const;

  /// Idempotent: stop accepting, drain in-flight responses, join threads.
  void stop();

 private:
  /// The resumable part of a session: survives the connection.
  struct SessionState {
    std::uint64_t id = 0;
    /// The COMMITTED resume secret. On a resumed connection it rotates to
    /// the fresh handshake's secret only once the peer authenticates its
    /// first sealed frame (which requires the ephemeral ECDH key only the
    /// genuine dialer holds), so a replayed ClientHello — whose proof an
    /// on-path attacker can copy but whose session keys it cannot derive —
    /// can never rotate the secret away from the real client.
    util::Bytes resume_secret;
    /// Secrets from handshakes whose peer has not yet authenticated a
    /// frame; accepted for resume alongside the committed one (so a client
    /// whose connection died before its first request can still come back)
    /// and retired wholesale at the next commit. Bounded FIFO.
    std::deque<util::Bytes> pending_resume_secrets;
    // Mutation dedup: request id -> serialized Response (definitive
    // outcomes only). Bounded FIFO via dedup_order.
    std::map<std::uint64_t, util::Bytes> dedup;
    std::deque<std::uint64_t> dedup_order;
  };

  struct LiveSession {
    std::unique_ptr<SocketTransport> transport;
    std::shared_ptr<SessionState> state;
    std::thread thread;
    bool finished = false;  // guarded by NetServer::mutex_
    /// Holds a live_count_ slot. Set inside the admission critical section
    /// (NOT after the handshake returns) so the slot is released on EVERY
    /// exit path — including a ServerHello send that throws because the
    /// client already hung up. Only the owning thread reads it afterwards.
    bool admitted = false;
    /// This connection's freshly derived resume secret, committed into the
    /// session state on the first authenticated frame; empty for fresh
    /// sessions (their secret commits immediately — there is no prior
    /// client to protect from a replayed hello).
    util::Bytes pending_resume_secret;
  };

  void accept_loop();
  void session_loop(LiveSession* session);
  /// Handshake on a fresh connection. Returns the ciphers (c2s rx, s2c tx)
  /// or nullopt if the connection was shed/failed (already closed).
  struct SessionCrypto {
    SessionCipher rx;
    SessionCipher tx;
  };
  std::optional<SessionCrypto> handshake(LiveSession& session);
  Response execute(SessionState& state, const Request& req);
  Response execute_store_op(const Request& req);
  Response execute_long_poll(const Request& req);
  void park_locked(std::shared_ptr<SessionState> state);
  void reap_finished_locked();
  [[nodiscard]] std::size_t max_connections_locked() const;

  cloud::CloudStore& store_;
  NetServerConfig cfg_;
  TcpListener listener_;
  pki::EcdsaKeyPair identity_;

  mutable std::mutex mutex_;
  crypto::Drbg drbg_;                      // guarded by mutex_
  NetServerStats stats_;                   // guarded by mutex_
  std::uint64_t next_session_id_ = 1;      // guarded by mutex_
  std::size_t live_count_ = 0;             // guarded by mutex_
  std::size_t connection_count_ = 0;       // guarded by mutex_
  std::size_t requests_in_flight_ = 0;     // guarded by mutex_
  std::size_t polls_in_flight_ = 0;        // guarded by mutex_
  std::list<std::unique_ptr<LiveSession>> sessions_;  // guarded by mutex_
  std::map<std::uint64_t, std::shared_ptr<SessionState>> parked_;  // "
  std::deque<std::uint64_t> parked_order_;                         // "

  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
};

}  // namespace ibbe::net
