#include "net/server.h"

#include <algorithm>

#include "crypto/hmac.h"
#include "field/fields.h"
#include "util/bytes.h"

namespace ibbe::net {

using util::ByteReader;
using util::Bytes;
using util::ByteWriter;

namespace {

/// A frame body is `u64 seq || payload`.
Bytes frame_body(std::uint64_t seq, std::span<const std::uint8_t> payload) {
  ByteWriter w;
  w.u64(seq);
  w.raw(payload);
  return w.take();
}

struct ParsedFrame {
  std::uint64_t seq;
  Bytes payload;
};

ParsedFrame parse_frame(const Bytes& body) {
  ByteReader r(body);
  ParsedFrame f;
  f.seq = r.u64();
  f.payload = r.raw(r.remaining());
  return f;
}

/// The poll/recv slice: sessions observe stop_ at least this often.
constexpr std::chrono::milliseconds k_slice{100};

/// Uncommitted resume secrets kept per session. Each slot can be consumed by
/// one replayed ClientHello; the real client's secret survives as long as
/// fewer than this many handshakes happen between its commits.
constexpr std::size_t k_max_pending_resume = 4;

/// HMAC-SHA256 output size: the only well-formed resume proof length.
constexpr std::size_t k_resume_proof_size = 32;

}  // namespace

NetServer::NetServer(cloud::CloudStore& store, NetServerConfig cfg)
    : store_(store),
      cfg_(cfg),
      identity_(cfg.identity_seed != 0
                    ? [&] {
                        crypto::Drbg seeded(cfg.identity_seed);
                        return pki::EcdsaKeyPair::generate(seeded);
                      }()
                    : [] {
                        crypto::Drbg os;
                        return pki::EcdsaKeyPair::generate(os);
                      }()) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

NetServer::~NetServer() { stop(); }

NetServerStats NetServer::stats() const {
  std::lock_guard lock(mutex_);
  NetServerStats s = stats_;
  s.live_sessions = live_count_;
  s.live_connections = connection_count_;
  return s;
}

std::size_t NetServer::max_connections_locked() const {
  return cfg_.max_connections != 0 ? cfg_.max_connections
                                   : cfg_.max_sessions * 2 + 16;
}

void NetServer::stop() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) {
    // Second caller: the first may still be joining; wait for the accept
    // thread only if it is ours to join (it never is here).
    return;
  }
  // No cross-thread fd access anywhere in shutdown: the accept loop polls
  // in k_slice slices and observes stop_ within one, so joining is enough;
  // the listener fd is closed by ~TcpListener once everything is joined.
  if (accept_thread_.joinable()) accept_thread_.join();
  // Sessions see stop_ within one recv/poll slice, finish their in-flight
  // response, and exit. Join them all, then drop the session list.
  std::list<std::unique_ptr<LiveSession>> sessions;
  {
    std::lock_guard lock(mutex_);
    sessions.swap(sessions_);
  }
  for (auto& s : sessions) {
    if (s->thread.joinable()) s->thread.join();
  }
}

void NetServer::reap_finished_locked() {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->finished) {
      if ((*it)->thread.joinable()) (*it)->thread.detach();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void NetServer::accept_loop() {
  while (!stop_.load()) {
    auto fd = listener_.accept(k_slice);
    if (!fd) {
      std::lock_guard lock(mutex_);
      reap_finished_locked();
      continue;
    }
    auto session = std::make_unique<LiveSession>();
    session->transport = std::make_unique<SocketTransport>(*fd);
    LiveSession* raw = session.get();
    bool shed = false;
    {
      std::lock_guard lock(mutex_);
      reap_finished_locked();
      if (connection_count_ >= max_connections_locked()) {
        // Pre-admission cap: max_sessions bounds only ADMITTED sessions, so
        // a flood of connections that never (or slowly) speak would
        // otherwise pin one thread each for up to handshake_timeout. Shed
        // by closing outright — no thread, no handshake wait.
        ++stats_.shed_connections;
        shed = true;
      } else {
        ++connection_count_;
        sessions_.push_back(std::move(session));
      }
    }
    if (shed) continue;  // `session` dies here and its fd closes with it
    raw->thread = std::thread([this, raw] { session_loop(raw); });
  }
}

std::optional<NetServer::SessionCrypto> NetServer::handshake(
    LiveSession& session) {
  auto frame = session.transport->recv_frame(cfg_.handshake_timeout);
  if (!frame) return std::nullopt;  // client never spoke; shed silently
  auto parsed = parse_frame(*frame);
  if (parsed.seq != 0) return std::nullopt;
  ClientHello hello = ClientHello::from_bytes(parsed.payload);
  if (hello.version != protocol_version) return std::nullopt;
  ec::P256Point client_eph = ec::p256_from_bytes(hello.eph_pub);
  if (client_eph.is_infinity() || !client_eph.on_curve()) return std::nullopt;

  bool plausible_resume = false;
  if (hello.session_id != 0 &&
      hello.resume_proof.size() == k_resume_proof_size) {
    std::lock_guard lock(mutex_);
    // Only an id this server could have issued earns the parked-wait below;
    // an unauthenticated garbage hello must not buy a 200ms thread hold.
    plausible_resume = hello.session_id < next_session_id_;
  }
  if (plausible_resume) {
    // A reconnect can race the dying session's cleanup: the client observes
    // the wire fault and redials before the old session thread has parked
    // its state, and a premature miss would re-execute the very mutation the
    // dedup cache exists to suppress. Wait briefly for the entry to appear;
    // a genuinely unknown id pays this bound once and degrades to fresh.
    const auto deadline = std::chrono::steady_clock::now() + 2 * k_slice;
    for (;;) {
      {
        std::lock_guard lock(mutex_);
        if (parked_.count(hello.session_id) != 0) break;
      }
      if (stop_.load() || std::chrono::steady_clock::now() >= deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  // Admission + resume decision and all schedule state under the lock;
  // the EC arithmetic below runs outside it.
  bool shed = false;
  bool resumed = false;
  std::uint64_t session_id = 0;
  std::shared_ptr<SessionState> state;
  field::P256Fr eph_secret;
  {
    std::lock_guard lock(mutex_);
    if (live_count_ >= cfg_.max_sessions) {
      ++stats_.busy_handshakes;
      shed = true;
    } else {
      if (plausible_resume) {
        auto it = parked_.find(hello.session_id);
        // The committed secret and every uncommitted pending one are
        // acceptable: the client's current secret is pending until its
        // first authenticated frame lands, and may stay pending across a
        // connection that died before carrying one.
        auto proof_ok = [&](const SessionState& st) {
          if (util::ct_equal(make_resume_proof(st.resume_secret,
                                               hello.eph_pub),
                             hello.resume_proof)) {
            return true;
          }
          for (const auto& pending : st.pending_resume_secrets) {
            if (util::ct_equal(make_resume_proof(pending, hello.eph_pub),
                               hello.resume_proof)) {
              return true;
            }
          }
          return false;
        };
        if (it != parked_.end() && proof_ok(*it->second)) {
          state = it->second;
          parked_.erase(it);
          std::erase(parked_order_, hello.session_id);
          resumed = true;
          session_id = hello.session_id;
          ++stats_.sessions_resumed;
        } else {
          ++stats_.resume_misses;
        }
      } else if (hello.session_id != 0) {
        ++stats_.resume_misses;
      }
      if (!state) {
        state = std::make_shared<SessionState>();
        state->id = session_id = next_session_id_++;
        ++stats_.sessions_accepted;
      }
      ++live_count_;
      // Inside the critical section, not after handshake() returns: every
      // cleanup path must release the slot even if the ServerHello send
      // below throws (the client may already have hung up).
      session.admitted = true;
      do {
        eph_secret =
            field::P256Fr::from_be_bytes_reduce(drbg_.bytes(32));
      } while (eph_secret.is_zero());
    }
  }

  ServerHello reply;
  reply.session_id = session_id;
  if (shed) {
    reply.outcome = ServerHello::busy;
    auto transcript =
        handshake_transcript(hello.eph_pub, reply.eph_pub, 0, reply.outcome);
    reply.signature = identity_.sign(transcript).to_bytes();
    try {
      session.transport->send_frame(frame_body(0, reply.to_bytes()));
    } catch (const util::TransientError&) {
      // Already gone; the shed stands either way.
    }
    return std::nullopt;
  }

  reply.outcome = resumed ? ServerHello::resumed : ServerHello::accepted;
  reply.eph_pub =
      ec::p256_to_bytes(ec::P256Point::generator().mul(eph_secret));
  auto transcript = handshake_transcript(hello.eph_pub, reply.eph_pub,
                                         session_id, reply.outcome);
  reply.signature = identity_.sign(transcript).to_bytes();

  SessionKeys keys = derive_session_keys(client_eph.mul(eph_secret),
                                         hello.eph_pub, reply.eph_pub);
  if (resumed) {
    // Do NOT rotate the committed secret yet: a replayed ClientHello gets
    // this far too. The rotation commits on the first frame sealed under
    // the new session keys, which only the genuine dialer can produce.
    session.pending_resume_secret = keys.resume_secret;
    state->pending_resume_secrets.push_back(keys.resume_secret);
    while (state->pending_resume_secrets.size() > k_max_pending_resume) {
      state->pending_resume_secrets.pop_front();
    }
  } else {
    state->resume_secret = keys.resume_secret;
  }
  // Hand the state to the session BEFORE the send: if the client hung up
  // and send_frame throws, cleanup still parks the (possibly resumed)
  // state instead of dropping its dedup cache on the floor.
  session.state = std::move(state);
  session.transport->send_frame(frame_body(0, reply.to_bytes()));
  return SessionCrypto{SessionCipher(keys.client_to_server, 'c'),
                       SessionCipher(keys.server_to_client, 's')};
}

void NetServer::session_loop(LiveSession* session) {
  try {
    auto crypto = handshake(*session);
    if (crypto) {
      std::uint64_t last_recv_seq = 0;
      std::uint64_t send_seq = 0;
      while (!stop_.load()) {
        std::optional<Bytes> frame;
        try {
          frame = session->transport->recv_frame(k_slice);
        } catch (const util::TransientError&) {
          break;  // EOF / torn stream: park for resume below
        }
        if (!frame) continue;  // slice timeout; re-check stop_
        ParsedFrame parsed;
        try {
          parsed = parse_frame(*frame);
        } catch (const util::DeserializeError&) {
          std::lock_guard lock(mutex_);
          ++stats_.bad_frames;
          break;
        }
        if (parsed.seq <= last_recv_seq) {
          // Duplicate delivery (wire fault): authenticated-or-not, a stale
          // sequence number is silently discarded.
          std::lock_guard lock(mutex_);
          ++stats_.dropped_dup_frames;
          continue;
        }
        auto payload = crypto->rx.open(parsed.seq, parsed.payload);
        if (!payload) {
          // AEAD failure: the channel cannot be trusted; drop it. The
          // client surfaces this as an integrity fault on its own side.
          std::lock_guard lock(mutex_);
          ++stats_.bad_frames;
          break;
        }
        last_recv_seq = parsed.seq;
        if (!session->pending_resume_secret.empty()) {
          // First authenticated frame on a resumed connection: the peer
          // proved it holds the session keys, so it is the genuine dialer.
          // Commit the rotation and retire every other outstanding secret
          // — a replayed hello's proof is worthless from here on.
          session->state->resume_secret =
              std::move(session->pending_resume_secret);
          session->state->pending_resume_secrets.clear();
          session->pending_resume_secret.clear();
        }
        Request req;
        try {
          req = Request::from_bytes(*payload);
        } catch (const util::DeserializeError&) {
          std::lock_guard lock(mutex_);
          ++stats_.bad_frames;
          break;
        }
        Response resp = execute(*session->state, req);
        auto sealed = crypto->tx.seal(++send_seq, resp.to_bytes());
        session->transport->send_frame(frame_body(send_seq, sealed));
      }
    }
  } catch (...) {
    // Handshake/send failure on this connection only; fall through to
    // cleanup. The session (if admitted) is parked and resumable.
  }
  session->transport->close();
  {
    std::lock_guard lock(mutex_);
    if (session->admitted) {
      --live_count_;
      if (!stop_.load() && session->state) {
        park_locked(session->state);
      }
    }
    --connection_count_;
    session->finished = true;
  }
}

void NetServer::park_locked(std::shared_ptr<SessionState> state) {
  if (cfg_.max_parked_sessions == 0) return;
  while (parked_.size() >= cfg_.max_parked_sessions) {
    parked_.erase(parked_order_.front());
    parked_order_.pop_front();
  }
  parked_order_.push_back(state->id);
  parked_.emplace(state->id, std::move(state));
}

Response NetServer::execute(SessionState& state, const Request& req) {
  const bool mutation = op_is_mutation(req.op);
  if (mutation) {
    auto it = state.dedup.find(req.id);
    if (it != state.dedup.end()) {
      std::lock_guard lock(mutex_);
      ++stats_.dedup_hits;
      ++stats_.requests_served;
      return Response::from_bytes(it->second);
    }
  }

  Response resp;
  if (req.op == Op::long_poll) {
    resp = execute_long_poll(req);
  } else {
    resp = execute_store_op(req);
  }
  resp.id = req.id;

  if (mutation && (resp.status == Status::ok ||
                   resp.status == Status::conflict)) {
    // Definitive outcome: remember it so a retry of this exact request
    // (same id, response lost to the wire) replays instead of re-executing.
    while (state.dedup_order.size() >= cfg_.dedup_cache_entries) {
      state.dedup.erase(state.dedup_order.front());
      state.dedup_order.pop_front();
    }
    state.dedup_order.push_back(req.id);
    state.dedup.emplace(req.id, resp.to_bytes());
  }
  std::lock_guard lock(mutex_);
  ++stats_.requests_served;
  return resp;
}

Response NetServer::execute_store_op(const Request& req) {
  Response resp;
  {
    std::lock_guard lock(mutex_);
    if (requests_in_flight_ >= cfg_.request_slots) {
      ++stats_.busy_requests;
      resp.status = Status::busy;
      return resp;
    }
    ++requests_in_flight_;
  }
  try {
    switch (req.op) {
      case Op::get: {
        auto v = store_.get(req.path);
        if (v) {
          resp.value = std::move(*v);
        } else {
          resp.status = Status::not_found;
        }
        break;
      }
      case Op::get_versioned: {
        auto v = store_.get_versioned(req.path);
        if (v) {
          resp.value = std::move(v->value);
          resp.version = v->version;
        } else {
          resp.status = Status::not_found;
        }
        break;
      }
      case Op::file_version:
        resp.version = store_.file_version(req.path);
        break;
      case Op::put:
        resp.version = store_.put(req.path, req.value);
        break;
      case Op::put_cas: {
        auto v = store_.put_cas(req.path, req.value, req.expected);
        if (v) {
          resp.version = *v;
        } else {
          resp.status = Status::conflict;
        }
        break;
      }
      case Op::erase:
        resp.flag = store_.erase(req.path);
        break;
      case Op::list:
        resp.names = store_.list(req.path);
        break;
      case Op::dir_version:
        resp.version = store_.dir_version(req.path);
        break;
      case Op::stats:
        resp.stats = store_.stats();
        break;
      case Op::stored_bytes:
        resp.bytes = store_.stored_bytes();
        break;
      case Op::long_poll:
        break;  // handled by execute_long_poll
    }
  } catch (const util::FaultError& e) {
    switch (e.kind()) {
      case util::FaultKind::transient:
        resp.status = Status::error_transient;
        break;
      case util::FaultKind::crash:
        resp.status = Status::error_crash;
        break;
      case util::FaultKind::integrity:
        resp.status = Status::error_integrity;
        break;
    }
    resp.error = e.what();
  } catch (const std::exception& e) {
    resp.status = Status::error_transient;
    resp.error = e.what();
  }
  std::lock_guard lock(mutex_);
  --requests_in_flight_;
  return resp;
}

Response NetServer::execute_long_poll(const Request& req) {
  Response resp;
  {
    std::lock_guard lock(mutex_);
    if (polls_in_flight_ >= cfg_.poll_slots) {
      ++stats_.busy_polls;
      resp.status = Status::busy;
      return resp;
    }
    ++polls_in_flight_;
  }
  auto timeout = std::min<std::chrono::milliseconds>(
      std::chrono::milliseconds(req.timeout_ms), cfg_.max_poll);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  try {
    // Sliced so a parked watcher observes stop_ and never blocks shutdown.
    while (true) {
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (remaining.count() <= 0 || stop_.load()) {
        resp.flag = false;  // server-side poll timeout: a SUCCESS, not a fault
        resp.version = store_.dir_version(req.path);
        break;
      }
      auto v = store_.long_poll(req.path, req.since, std::min(remaining, k_slice));
      if (v) {
        resp.flag = true;
        resp.version = *v;
        break;
      }
    }
  } catch (const util::FaultError& e) {
    resp.status = e.kind() == util::FaultKind::integrity
                      ? Status::error_integrity
                      : (e.kind() == util::FaultKind::crash
                             ? Status::error_crash
                             : Status::error_transient);
    resp.error = e.what();
  } catch (const std::exception& e) {
    resp.status = Status::error_transient;
    resp.error = e.what();
  }
  std::lock_guard lock(mutex_);
  --polls_in_flight_;
  return resp;
}

}  // namespace ibbe::net
