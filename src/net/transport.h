// Byte-stream transports for the framed protocol, plus the wire-level fault
// injector that mirrors cloud/fault.h one layer down.
//
// A Transport moves whole frames (`u32 length || body`) over a reliable byte
// stream; SocketTransport implements it over a connected socket (TCP
// loopback in the tests and benches, but any stream fd works — socketpair
// included). Failure mapping is the util/errors.h taxonomy: EOF, torn
// frames, I/O errors and oversized length prefixes are all TRANSIENT — the
// connection is dropped and the caller reconnects; nothing at this layer is
// integrity, because only the AEAD tag above can distinguish corruption from
// truncation with authority.
//
// FaultInjectingTransport decorates any Transport with a seeded SplitMix64
// schedule of the failure modes a real WAN exhibits between a client and the
// service front-end:
//
//   * latency spikes     — a delivery stalls for a configured spike;
//   * dropped frames     — a send is silently discarded, or a received frame
//                          is discarded before delivery (the peer answered;
//                          the answer evaporated — client deadlines must
//                          catch this);
//   * duplicated frames  — a frame is delivered twice (the session layer's
//                          sequence check must discard the copy);
//   * torn frames        — only a prefix of the wire bytes is written, then
//                          the connection dies: the peer sees a truncated
//                          stream (transient), never a valid frame;
//   * disconnects        — the connection dies before a send (the request
//                          never existed) or right after one (the request
//                          was DELIVERED and the response will be lost: the
//                          mid-mutation ambiguity that reconnect-with-resume
//                          and server-side dedup must resolve);
//   * corrupted frames   — a received body has a bit flipped: the AEAD tag
//                          fails and the session layer must surface an
//                          INTEGRITY fault, never retry it.
//
// The schedule object is shared across reconnects (a NetFaultSchedule
// outlives individual Transport instances), so one seeded plan produces one
// reproducible fault history per client no matter how many times the client
// reconnects. Armed one-shot faults (arm_*) give tests exact placement,
// like FaultInjectingStore::arm_crash_after.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "util/bytes.h"
#include "util/errors.h"

namespace ibbe::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends one frame body (the u32 length prefix is added on the wire).
  /// Throws util::TransientError if the connection is closed or errors.
  virtual void send_frame(const util::Bytes& body) = 0;

  /// Receives the next frame body. std::nullopt on timeout (the connection
  /// stays usable); throws util::TransientError on EOF, a torn frame, an
  /// oversized length prefix, or any I/O error (the connection is dead).
  virtual std::optional<util::Bytes> recv_frame(
      std::chrono::milliseconds timeout) = 0;

  /// Test/fault hook: writes only the first `wire_bytes` of the frame's wire
  /// image, then closes — a torn frame. Default: just closes (pure drop).
  virtual void send_torn_frame(const util::Bytes& body, std::size_t wire_bytes);

  virtual void close() = 0;
  [[nodiscard]] virtual bool is_open() const = 0;
};

/// Frame transport over a connected stream socket; owns the fd.
class SocketTransport : public Transport {
 public:
  explicit SocketTransport(int fd);
  ~SocketTransport() override;
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// TCP connect to 127.0.0.1:`port`, with `timeout` enforced via a
  /// non-blocking connect + poll (the fd is blocking again on return);
  /// throws util::TransientError on refusal/timeout (the server may just
  /// not be up *yet*).
  static std::unique_ptr<SocketTransport> connect_loopback(
      std::uint16_t port, std::chrono::milliseconds timeout);

  void send_frame(const util::Bytes& body) override;
  std::optional<util::Bytes> recv_frame(
      std::chrono::milliseconds timeout) override;
  void send_torn_frame(const util::Bytes& body, std::size_t wire_bytes) override;
  void close() override;
  [[nodiscard]] bool is_open() const override;

 private:
  void send_raw(const std::uint8_t* data, std::size_t len);

  int fd_;
  util::Bytes rx_;  // partial-frame assembly buffer
};

/// Listening TCP socket on 127.0.0.1 with an ephemeral port.
class TcpListener {
 public:
  TcpListener();
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  /// Accepted fd, or std::nullopt on timeout / after close().
  [[nodiscard]] std::optional<int> accept(std::chrono::milliseconds timeout);
  void close();

 private:
  int fd_;
  std::uint16_t port_ = 0;
};

// ---------------------------------------------------------------------------
// Wire-level fault injection
// ---------------------------------------------------------------------------

/// Per-frame fault probabilities plus the seed that replays the schedule.
struct NetFaultPlan {
  std::uint64_t seed = 1;
  double send_drop_rate = 0.0;        // frame never reaches the wire
  double send_dup_rate = 0.0;         // frame written twice
  double recv_drop_rate = 0.0;        // received frame discarded
  double recv_dup_rate = 0.0;         // received frame delivered twice
  double torn_frame_rate = 0.0;       // partial write, then disconnect
  double disconnect_send_rate = 0.0;  // dies BEFORE the frame is written
  double disconnect_after_send_rate = 0.0;  // dies AFTER (mid-mutation)
  double disconnect_recv_rate = 0.0;  // dies while waiting for a frame
  double corrupt_recv_rate = 0.0;     // bit flip in a received body
  double latency_spike_rate = 0.0;    // delivery stalls
  std::chrono::microseconds latency_spike{2000};
};

struct NetFaultStats {
  std::uint64_t frames_sent = 0;      // frames that reached the wire
  std::uint64_t frames_received = 0;  // frames delivered to the caller
  std::uint64_t send_drops = 0;
  std::uint64_t send_dups = 0;
  std::uint64_t recv_drops = 0;
  std::uint64_t recv_dups = 0;
  std::uint64_t torn_frames = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t latency_spikes = 0;

  [[nodiscard]] std::uint64_t total_faults() const {
    return send_drops + send_dups + recv_drops + recv_dups + torn_frames +
           disconnects + corruptions + latency_spikes;
  }
};

/// The seeded schedule state, shared by every FaultInjectingTransport a
/// client creates across reconnects. Thread-safe.
class NetFaultSchedule {
 public:
  explicit NetFaultSchedule(NetFaultPlan plan);

  [[nodiscard]] const NetFaultPlan& plan() const { return plan_; }
  [[nodiscard]] NetFaultStats stats() const;

  /// Master switch for the random schedule (armed one-shots still fire).
  void set_enabled(bool enabled);

  // One-shot armed faults for deterministic tests. Counted in sends (or
  // receives) from now across ALL transports sharing this schedule; n = 1
  // targets the very next frame.
  void arm_disconnect_after_send(std::uint64_t n);
  void arm_drop_next_recv();
  void arm_corrupt_next_recv();

 private:
  friend class FaultInjectingTransport;

  [[nodiscard]] bool roll_locked(double rate);

  NetFaultPlan plan_;
  mutable std::mutex mutex_;
  std::uint64_t rng_state_;
  NetFaultStats stats_;
  bool enabled_ = true;
  std::uint64_t sends_seen_ = 0;
  std::uint64_t disconnect_after_send_at_ = 0;  // absolute ordinal; 0 = off
  bool drop_next_recv_ = false;
  bool corrupt_next_recv_ = false;
};

/// Decorates a Transport with the shared schedule. Close-only faults leave
/// the inner transport closed; the next operation then throws transient and
/// the owner reconnects through its factory.
class FaultInjectingTransport : public Transport {
 public:
  FaultInjectingTransport(std::unique_ptr<Transport> inner,
                          std::shared_ptr<NetFaultSchedule> schedule);

  void send_frame(const util::Bytes& body) override;
  std::optional<util::Bytes> recv_frame(
      std::chrono::milliseconds timeout) override;
  void close() override;
  [[nodiscard]] bool is_open() const override;

 private:
  std::unique_ptr<Transport> inner_;
  std::shared_ptr<NetFaultSchedule> schedule_;
  std::deque<util::Bytes> pending_dups_;  // duplicated deliveries
};

}  // namespace ibbe::net
