#include "net/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "net/protocol.h"
#include "util/retry.h"

namespace ibbe::net {

using util::Bytes;
using util::TransientError;

// ---------------------------------------------------------------------------
// SocketTransport
// ---------------------------------------------------------------------------

void Transport::send_torn_frame(const util::Bytes& /*body*/,
                                std::size_t /*wire_bytes*/) {
  close();
}

SocketTransport::SocketTransport(int fd) : fd_(fd) {
  int one = 1;
  // Frames are small request/response units; never batch them.
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

SocketTransport::~SocketTransport() { close(); }

std::unique_ptr<SocketTransport> SocketTransport::connect_loopback(
    std::uint16_t port, std::chrono::milliseconds timeout) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw TransientError("socket(): " + std::string(strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  // A plain blocking connect is bounded only by the kernel's own timeout,
  // far longer than any caller deadline (and SO_SNDTIMEO's effect on
  // connect() is Linux-specific). Non-blocking connect + poll enforces
  // `timeout` portably; the socket is restored to blocking afterwards.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const auto fail = [&](const std::string& what) -> std::unique_ptr<SocketTransport> {
    ::close(fd);
    throw TransientError("connect(127.0.0.1:" + std::to_string(port) +
                         "): " + what);
  };
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS) return fail(strerror(errno));
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (remaining.count() <= 0) return fail("timed out");
      pollfd p{fd, POLLOUT, 0};
      int rc = ::poll(&p, 1, static_cast<int>(remaining.count()));
      if (rc < 0) {
        if (errno == EINTR) continue;
        return fail(std::string("poll(): ") + strerror(errno));
      }
      if (rc == 0) return fail("timed out");
      break;
    }
    int soerr = 0;
    socklen_t slen = sizeof soerr;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &slen) != 0) {
      return fail(std::string("getsockopt(SO_ERROR): ") + strerror(errno));
    }
    if (soerr != 0) return fail(strerror(soerr));
  }
  ::fcntl(fd, F_SETFL, flags);
  return std::make_unique<SocketTransport>(fd);
}

void SocketTransport::send_raw(const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    ssize_t n = ::send(fd_, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      close();
      throw TransientError("send(): " + std::string(strerror(err)));
    }
    off += static_cast<std::size_t>(n);
  }
}

void SocketTransport::send_frame(const Bytes& body) {
  if (fd_ < 0) throw TransientError("send on closed transport");
  if (body.size() > max_frame_bytes) {
    throw std::length_error("net frame exceeds max_frame_bytes");
  }
  Bytes wire(4 + body.size());
  auto len = static_cast<std::uint32_t>(body.size());
  wire[0] = static_cast<std::uint8_t>(len >> 24);
  wire[1] = static_cast<std::uint8_t>(len >> 16);
  wire[2] = static_cast<std::uint8_t>(len >> 8);
  wire[3] = static_cast<std::uint8_t>(len);
  std::memcpy(wire.data() + 4, body.data(), body.size());
  send_raw(wire.data(), wire.size());
}

void SocketTransport::send_torn_frame(const Bytes& body,
                                      std::size_t wire_bytes) {
  if (fd_ < 0) return;
  Bytes wire(4 + body.size());
  auto len = static_cast<std::uint32_t>(body.size());
  wire[0] = static_cast<std::uint8_t>(len >> 24);
  wire[1] = static_cast<std::uint8_t>(len >> 16);
  wire[2] = static_cast<std::uint8_t>(len >> 8);
  wire[3] = static_cast<std::uint8_t>(len);
  std::memcpy(wire.data() + 4, body.data(), body.size());
  try {
    send_raw(wire.data(), std::min(wire_bytes, wire.size()));
  } catch (const TransientError&) {
    // Already dead — a torn frame on a dying connection is still torn.
  }
  close();
}

std::optional<Bytes> SocketTransport::recv_frame(
    std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    // A whole frame already assembled?
    if (rx_.size() >= 4) {
      std::size_t len = (std::size_t{rx_[0]} << 24) | (std::size_t{rx_[1]} << 16) |
                        (std::size_t{rx_[2]} << 8) | std::size_t{rx_[3]};
      if (len > max_frame_bytes) {
        close();
        throw TransientError("oversized frame length (torn or corrupt stream)");
      }
      if (rx_.size() >= 4 + len) {
        Bytes body(rx_.begin() + 4, rx_.begin() + 4 + static_cast<long>(len));
        rx_.erase(rx_.begin(), rx_.begin() + 4 + static_cast<long>(len));
        return body;
      }
    }
    if (fd_ < 0) throw TransientError("recv on closed transport");

    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) return std::nullopt;

    pollfd p{fd_, POLLIN, 0};
    int rc = ::poll(&p, 1, static_cast<int>(remaining.count()));
    if (rc < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      close();
      throw TransientError("poll(): " + std::string(strerror(err)));
    }
    if (rc == 0) return std::nullopt;  // timeout

    std::uint8_t buf[16384];
    ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      close();
      throw TransientError("recv(): " + std::string(strerror(err)));
    }
    if (n == 0) {
      close();
      if (!rx_.empty()) {
        throw TransientError("connection closed mid-frame (torn frame)");
      }
      throw TransientError("connection closed by peer");
    }
    rx_.insert(rx_.end(), buf, buf + n);
  }
}

void SocketTransport::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool SocketTransport::is_open() const { return fd_ >= 0; }

// ---------------------------------------------------------------------------
// TcpListener
// ---------------------------------------------------------------------------

TcpListener::TcpListener() {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error("listener socket(): " + std::string(strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd_, 128) != 0) {
    int err = errno;
    ::close(fd_);
    throw std::runtime_error("listener bind/listen: " +
                             std::string(strerror(err)));
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() { close(); }

std::optional<int> TcpListener::accept(std::chrono::milliseconds timeout) {
  if (fd_ < 0) return std::nullopt;
  pollfd p{fd_, POLLIN, 0};
  int rc = ::poll(&p, 1, static_cast<int>(timeout.count()));
  if (rc <= 0) return std::nullopt;
  int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return std::nullopt;
  return client;
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// NetFaultSchedule / FaultInjectingTransport
// ---------------------------------------------------------------------------

NetFaultSchedule::NetFaultSchedule(NetFaultPlan plan)
    : plan_(plan), rng_state_(plan.seed) {}

bool NetFaultSchedule::roll_locked(double rate) {
  if (rate <= 0.0) return false;
  double unit = static_cast<double>(util::splitmix64(rng_state_) >> 11) /
                static_cast<double>(1ull << 53);  // [0, 1)
  return unit < rate;
}

NetFaultStats NetFaultSchedule::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void NetFaultSchedule::set_enabled(bool enabled) {
  std::lock_guard lock(mutex_);
  enabled_ = enabled;
}

void NetFaultSchedule::arm_disconnect_after_send(std::uint64_t n) {
  std::lock_guard lock(mutex_);
  disconnect_after_send_at_ = sends_seen_ + n;
}

void NetFaultSchedule::arm_drop_next_recv() {
  std::lock_guard lock(mutex_);
  drop_next_recv_ = true;
}

void NetFaultSchedule::arm_corrupt_next_recv() {
  std::lock_guard lock(mutex_);
  corrupt_next_recv_ = true;
}

FaultInjectingTransport::FaultInjectingTransport(
    std::unique_ptr<Transport> inner,
    std::shared_ptr<NetFaultSchedule> schedule)
    : inner_(std::move(inner)), schedule_(std::move(schedule)) {}

void FaultInjectingTransport::send_frame(const Bytes& body) {
  enum class Verdict {
    deliver,
    drop,
    dup,
    torn,
    disconnect_before,
    disconnect_after
  };
  Verdict v = Verdict::deliver;
  std::chrono::microseconds spike{0};
  {
    auto& s = *schedule_;
    std::lock_guard lock(s.mutex_);
    ++s.sends_seen_;
    if (s.disconnect_after_send_at_ != 0 &&
        s.sends_seen_ >= s.disconnect_after_send_at_) {
      s.disconnect_after_send_at_ = 0;
      ++s.stats_.disconnects;
      v = Verdict::disconnect_after;
    } else if (s.enabled_) {
      if (s.roll_locked(s.plan_.latency_spike_rate)) {
        ++s.stats_.latency_spikes;
        spike = s.plan_.latency_spike;
      }
      if (s.roll_locked(s.plan_.disconnect_send_rate)) {
        ++s.stats_.disconnects;
        v = Verdict::disconnect_before;
      } else if (s.roll_locked(s.plan_.torn_frame_rate)) {
        ++s.stats_.torn_frames;
        v = Verdict::torn;
      } else if (s.roll_locked(s.plan_.send_drop_rate)) {
        ++s.stats_.send_drops;
        v = Verdict::drop;
      } else if (s.roll_locked(s.plan_.disconnect_after_send_rate)) {
        ++s.stats_.disconnects;
        v = Verdict::disconnect_after;
      } else if (s.roll_locked(s.plan_.send_dup_rate)) {
        ++s.stats_.send_dups;
        v = Verdict::dup;
      }
    }
    if (v == Verdict::deliver || v == Verdict::dup ||
        v == Verdict::disconnect_after) {
      ++s.stats_.frames_sent;
    }
  }
  if (spike.count() > 0) std::this_thread::sleep_for(spike);

  switch (v) {
    case Verdict::drop:
      return;  // silently evaporates; the caller's deadline must catch it
    case Verdict::disconnect_before:
      inner_->close();
      throw TransientError("injected disconnect before send");
    case Verdict::torn:
      // Half the wire image (at least the length prefix plus one body byte,
      // so the peer is guaranteed a short read, not a clean boundary).
      inner_->send_torn_frame(body, 4 + std::max<std::size_t>(1, body.size() / 2));
      throw TransientError("injected torn frame");
    case Verdict::disconnect_after:
      // The frame is DELIVERED, then the connection dies: the peer acts on
      // it but the sender can never hear back — exact mid-mutation shape.
      inner_->send_frame(body);
      inner_->close();
      return;
    case Verdict::dup:
      inner_->send_frame(body);
      inner_->send_frame(body);
      return;
    case Verdict::deliver:
      inner_->send_frame(body);
      return;
  }
}

std::optional<Bytes> FaultInjectingTransport::recv_frame(
    std::chrono::milliseconds timeout) {
  if (!pending_dups_.empty()) {
    Bytes body = std::move(pending_dups_.front());
    pending_dups_.pop_front();
    return body;
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() < 0) remaining = std::chrono::milliseconds{0};
    auto body = inner_->recv_frame(remaining);
    if (!body) return std::nullopt;  // genuine timeout

    enum class Verdict { deliver, drop, dup, corrupt, disconnect };
    Verdict v = Verdict::deliver;
    std::chrono::microseconds spike{0};
    {
      auto& s = *schedule_;
      std::lock_guard lock(s.mutex_);
      if (s.drop_next_recv_) {
        s.drop_next_recv_ = false;
        ++s.stats_.recv_drops;
        v = Verdict::drop;
      } else if (s.corrupt_next_recv_) {
        s.corrupt_next_recv_ = false;
        ++s.stats_.corruptions;
        v = Verdict::corrupt;
      } else if (s.enabled_) {
        if (s.roll_locked(s.plan_.latency_spike_rate)) {
          ++s.stats_.latency_spikes;
          spike = s.plan_.latency_spike;
        }
        if (s.roll_locked(s.plan_.disconnect_recv_rate)) {
          ++s.stats_.disconnects;
          v = Verdict::disconnect;
        } else if (s.roll_locked(s.plan_.recv_drop_rate)) {
          ++s.stats_.recv_drops;
          v = Verdict::drop;
        } else if (s.roll_locked(s.plan_.corrupt_recv_rate)) {
          ++s.stats_.corruptions;
          v = Verdict::corrupt;
        } else if (s.roll_locked(s.plan_.recv_dup_rate)) {
          ++s.stats_.recv_dups;
          v = Verdict::dup;
        }
      }
      if (v != Verdict::drop && v != Verdict::disconnect) {
        ++s.stats_.frames_received;
      }
    }
    if (spike.count() > 0) std::this_thread::sleep_for(spike);

    switch (v) {
      case Verdict::drop:
        continue;  // as if the network ate it; keep waiting out the deadline
      case Verdict::disconnect:
        inner_->close();
        throw TransientError("injected disconnect during receive");
      case Verdict::corrupt: {
        Bytes corrupted = std::move(*body);
        if (!corrupted.empty()) corrupted[corrupted.size() / 2] ^= 0x20;
        return corrupted;
      }
      case Verdict::dup:
        pending_dups_.push_back(*body);
        return body;
      case Verdict::deliver:
        return body;
    }
  }
}

void FaultInjectingTransport::close() { inner_->close(); }

bool FaultInjectingTransport::is_open() const { return inner_->is_open(); }

}  // namespace ibbe::net
