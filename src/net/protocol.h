// Wire protocol for the networked cloud front-end.
//
// The paper's evaluation drives grant/revoke and client sync through a real
// cloud provider over the network; this module defines the framed protocol
// that promotes the in-process `CloudStore` interface to a socket service.
// Three layers, bottom-up:
//
//   * frames    — every message travels as `u32 length || u64 seq || body`.
//                 seq 0 marks a PLAINTEXT handshake frame; any other seq is a
//                 per-direction monotonic counter and the body is an AES-GCM
//                 sealed payload whose nonce and AAD bind that counter (so a
//                 frame replayed or re-ordered by the network authenticates
//                 but is discarded by the sequence check — duplicate
//                 delivery is a *benign* wire fault, a forged or corrupted
//                 body is an integrity fault);
//   * handshake — one ClientHello / ServerHello exchange: ephemeral P-256
//                 ECDH, HKDF-SHA256 into two direction keys plus a resume
//                 secret, the server's ECDSA signature over the transcript
//                 (clients pin the server identity key the same way they pin
//                 the admin verification key). Per-session cipher state is
//                 expanded once at session setup — the beforenm/context
//                 idiom — and reused for every frame;
//   * requests  — the full CloudStore surface (get / put / put_cas / erase /
//                 list / versions / long_poll / stats) as request/response
//                 records carrying the existing serialized artifacts
//                 (SignedEnvelope payloads travel as opaque values). Every
//                 request has a client-assigned id; responses echo it, which
//                 is what makes reconnect-with-resume able to deduplicate an
//                 ambiguous mutation (src/net/README.md has the frame and
//                 message layout tables).
//
// Error taxonomy: everything this layer throws is the shared
// util/errors.h FaultKind family. A truncated frame or closed connection is
// TRANSIENT (reconnect and retry); a frame that fails AEAD authentication is
// INTEGRITY (evidence of tampering, never retried). Status codes carry
// store-side faults across the wire so the taxonomy survives end-to-end.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cloud/store.h"
#include "crypto/gcm.h"
#include "ec/curves.h"
#include "util/bytes.h"

namespace ibbe::net {

/// Bumped on any incompatible change; the server rejects mismatches.
constexpr std::uint32_t protocol_version = 1;

/// Sanity bound on one frame (header excluded). A length prefix beyond this
/// is treated as a torn/corrupted stream: the connection is dropped and the
/// failure surfaces as transient (the AEAD tag, not the length field, is the
/// integrity boundary).
constexpr std::size_t max_frame_bytes = 1u << 24;

/// Bytes the session layer wraps around a serialized record: the 8-byte
/// sequence number in the frame body plus the 16-byte AES-GCM tag appended
/// by seal(). A record larger than max_frame_bytes minus this can never
/// travel; RemoteStore rejects it up front as std::invalid_argument (a
/// caller contract violation, deliberately OUTSIDE the FaultKind taxonomy:
/// it is not retryable and not evidence of any fault).
constexpr std::size_t sealed_frame_overhead = 8 + 16;
constexpr std::size_t max_record_bytes = max_frame_bytes - sealed_frame_overhead;

// ---------------------------------------------------------------------------
// Handshake records (travel in plaintext seq-0 frames; they contain only
// public keys, ids and MACs).
// ---------------------------------------------------------------------------

struct ClientHello {
  std::uint32_t version = protocol_version;
  util::Bytes eph_pub;           // 33-byte compressed P-256 point
  std::uint64_t session_id = 0;  // 0 = new session, else resume request
  util::Bytes resume_proof;      // HMAC(resume_secret, eph_pub); empty if new

  [[nodiscard]] util::Bytes to_bytes() const;
  static ClientHello from_bytes(std::span<const std::uint8_t> data);
};

struct ServerHello {
  enum : std::uint8_t {
    busy = 0,      // sheds the connection before any state is created
    accepted = 1,  // fresh session
    resumed = 2,   // session state (dedup cache) restored
  };
  std::uint8_t outcome = busy;
  util::Bytes eph_pub;           // empty when busy
  std::uint64_t session_id = 0;
  util::Bytes signature;         // ECDSA over handshake_transcript(...)

  [[nodiscard]] util::Bytes to_bytes() const;
  static ServerHello from_bytes(std::span<const std::uint8_t> data);
};

/// What both sides sign/verify: the ephemeral keys, the session id and the
/// outcome, so a MITM cannot splice sessions or downgrade a resume.
util::Bytes handshake_transcript(std::span<const std::uint8_t> client_eph,
                                 std::span<const std::uint8_t> server_eph,
                                 std::uint64_t session_id,
                                 std::uint8_t outcome);

/// HKDF-SHA256 schedule from the ECDH shared point and both ephemerals.
struct SessionKeys {
  util::Bytes client_to_server;  // 32
  util::Bytes server_to_client;  // 32
  util::Bytes resume_secret;     // 32; proves session ownership on reconnect
};
SessionKeys derive_session_keys(const ec::P256Point& shared,
                                std::span<const std::uint8_t> client_eph,
                                std::span<const std::uint8_t> server_eph);

/// The reconnect proof: HMAC-SHA256(resume_secret, new client ephemeral).
util::Bytes make_resume_proof(std::span<const std::uint8_t> resume_secret,
                              std::span<const std::uint8_t> eph_pub);

// ---------------------------------------------------------------------------
// Per-direction session cipher.
// ---------------------------------------------------------------------------

/// One direction of a session: an AES-256-GCM context expanded once from the
/// direction key (the beforenm idiom) sealing each frame under a nonce and
/// AAD derived from the frame's sequence number. Sequence numbers start at 1
/// (0 is the plaintext handshake marker) and never repeat within a session,
/// so nonces never repeat under one key; a resume installs fresh keys.
class SessionCipher {
 public:
  SessionCipher(std::span<const std::uint8_t> key32, char direction);

  [[nodiscard]] util::Bytes seal(std::uint64_t seq,
                                 std::span<const std::uint8_t> payload) const;
  /// std::nullopt on authentication failure.
  [[nodiscard]] std::optional<util::Bytes> open(
      std::uint64_t seq, std::span<const std::uint8_t> sealed) const;

 private:
  crypto::Aes256Gcm gcm_;
  char direction_;  // 'c' (client->server) or 's' (server->client)
};

// ---------------------------------------------------------------------------
// Request / response records (travel sealed).
// ---------------------------------------------------------------------------

enum class Op : std::uint8_t {
  get = 1,
  get_versioned,
  file_version,
  put,
  put_cas,
  erase,
  list,
  dir_version,
  long_poll,
  stats,
  stored_bytes,
};

[[nodiscard]] constexpr bool op_is_mutation(Op op) {
  return op == Op::put || op == Op::put_cas || op == Op::erase;
}

struct Request {
  Op op = Op::get;
  /// Client-assigned, monotonic per session, stable across the retries of
  /// ONE logical call — the server's dedup key for ambiguous mutations.
  std::uint64_t id = 0;
  std::string path;              // path / prefix / dir, by op
  util::Bytes value;             // put / put_cas
  std::uint64_t expected = 0;    // put_cas
  std::uint64_t since = 0;       // long_poll
  std::uint64_t timeout_ms = 0;  // long_poll

  [[nodiscard]] util::Bytes to_bytes() const;
  static Request from_bytes(std::span<const std::uint8_t> data);
};

enum class Status : std::uint8_t {
  ok = 1,
  not_found,         // get / get_versioned on an absent path
  conflict,          // put_cas version conflict (applied nothing)
  busy,              // explicit overload shed; retryable after backoff
  error_transient,   // the backing store threw a transient fault
  error_crash,       // the backing store threw a crash fault
  error_integrity,   // the backing store threw an integrity fault
};

struct Response {
  Status status = Status::ok;
  std::uint64_t id = 0;          // echoes Request::id
  util::Bytes value;             // get / get_versioned
  std::uint64_t version = 0;     // put/put_cas/*_version/get_versioned/poll
  bool flag = false;             // erase: erased; long_poll: woke (vs timeout)
  std::vector<std::string> names;  // list
  cloud::CloudStats stats;       // stats
  std::uint64_t bytes = 0;       // stored_bytes
  std::string error;             // error_* detail

  [[nodiscard]] util::Bytes to_bytes() const;
  static Response from_bytes(std::span<const std::uint8_t> data);
};

/// Re-throws a store-side fault forwarded in `r` as its typed exception;
/// returns normally for every non-error status. The wire layer forwards
/// rather than absorbs these so retry loops above the RemoteStore keep
/// exactly the policy they have against an in-process store.
void throw_if_store_fault(const Response& r);

}  // namespace ibbe::net
