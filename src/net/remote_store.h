// Client side of the networked front-end: a CloudStore whose every call is
// an RPC to a NetServer, so AdminApi/ClientApi run unmodified over the wire.
//
// Failure discipline (the contract the model-based `ibbe_sgx_remote`
// deployment is held to):
//
//   * every attempt has a deadline — a request whose response evaporates
//     (dropped frame, dead peer) times out, the connection is dropped, and
//     the SAME request id is retried over a resumed session, where the
//     server's dedup cache turns an ambiguous mutation into a replayed
//     definitive answer. Wire faults and Status::busy sheds consume retry
//     attempts under the RetryPolicy's backoff; exhausting the budget throws
//     util::TransientError — typed, retryable, never a hang;
//   * a server-side long-poll timeout (Response.flag == false) is a SUCCESS
//     — it consumes no retry attempts and long_poll() simply returns
//     std::nullopt, exactly like the in-process store;
//   * store-side faults forwarded in error statuses re-throw as their typed
//     util/errors.h exceptions WITHOUT consuming wire retry attempts: the
//     retry policy for store faults belongs to the layers above (AdminApi /
//     ClientApi), and they keep exactly the policy they have in-process;
//   * an AEAD failure on a received frame, or a server identity signature
//     that does not verify against the pinned key, is util::IntegrityError —
//     never retried, always propagated.
//
// RPCs are serialized on one connection (the upper layers' stores are
// already shared-by-reference and internally locked; benches wanting
// concurrency open one RemoteStore per simulated client, as real clients
// would). The fault schedule hooks in *under* the session cipher via
// FaultInjectingTransport, so injected corruption exercises the real AEAD
// rejection path and injected disconnects exercise the real resume path.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>

#include "cloud/store.h"
#include "ec/curves.h"
#include "net/protocol.h"
#include "net/transport.h"
#include "util/retry.h"

namespace ibbe::net {

struct RemoteStoreConfig {
  std::uint16_t port = 0;
  /// Pinned server identity (NetServer::identity_key()). Handshakes signed
  /// by any other key fail with util::IntegrityError.
  util::Bytes server_identity;
  /// Wire-fault budget: attempts/backoff for transient transport failures
  /// and busy sheds. Store-side faults do not draw from this.
  util::RetryPolicy retry{};
  /// Per-attempt response deadline (long_poll adds its own poll timeout).
  std::chrono::milliseconds request_deadline{2'000};
  std::chrono::milliseconds connect_timeout{1'000};
  /// Optional wire-fault schedule; shared across reconnects so one seed
  /// replays one fault history. nullptr = clean wire.
  std::shared_ptr<NetFaultSchedule> faults;
};

class RemoteStore : public cloud::CloudStore {
 public:
  explicit RemoteStore(RemoteStoreConfig cfg);
  ~RemoteStore() override;

  std::uint64_t put(const std::string& path, util::Bytes value) override;
  [[nodiscard]] std::optional<std::uint64_t> put_cas(
      const std::string& path, util::Bytes value,
      std::uint64_t expected) override;
  [[nodiscard]] std::optional<util::Bytes> get(
      const std::string& path) const override;
  [[nodiscard]] std::optional<Versioned> get_versioned(
      const std::string& path) const override;
  [[nodiscard]] std::uint64_t file_version(
      const std::string& path) const override;
  bool erase(const std::string& path) override;
  [[nodiscard]] std::vector<std::string> list(
      const std::string& prefix) const override;
  [[nodiscard]] std::uint64_t dir_version(const std::string& dir) const override;
  [[nodiscard]] std::optional<std::uint64_t> long_poll(
      const std::string& dir, std::uint64_t since,
      std::chrono::milliseconds timeout) const override;
  [[nodiscard]] cloud::CloudStats stats() const override;
  [[nodiscard]] std::size_t stored_bytes() const override;

  /// Sessions resumed by this client (ambiguous-retry reconnects).
  [[nodiscard]] std::uint64_t resumes() const;
  /// Wire retry attempts actually taken (transient faults + busy sheds).
  [[nodiscard]] std::uint64_t wire_retries() const;

  /// Drops the connection (next RPC reconnects and resumes). Test hook for
  /// exercising resume without a fault schedule.
  void disconnect();

 private:
  Response rpc(Request req) const;
  Response attempt_locked(const Request& req) const;
  void connect_locked() const;
  void drop_locked() const;

  RemoteStoreConfig cfg_;
  ec::P256Point server_key_;

  mutable std::mutex mutex_;
  mutable std::unique_ptr<Transport> transport_;
  mutable std::optional<SessionCipher> tx_;  // client->server
  mutable std::optional<SessionCipher> rx_;  // server->client
  mutable std::uint64_t send_seq_ = 0;
  mutable std::uint64_t last_recv_seq_ = 0;
  mutable std::uint64_t session_id_ = 0;  // 0 = never connected
  mutable util::Bytes resume_secret_;
  mutable std::uint64_t next_request_id_ = 1;
  mutable std::uint64_t resumes_ = 0;
  mutable std::uint64_t wire_retries_ = 0;
};

}  // namespace ibbe::net
