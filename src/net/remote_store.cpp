#include "net/remote_store.h"

#include <thread>

#include "crypto/drbg.h"
#include "field/fields.h"
#include "pki/ecdsa.h"
#include "util/errors.h"

namespace ibbe::net {

using util::ByteReader;
using util::Bytes;
using util::ByteWriter;
using util::IntegrityError;
using util::TransientError;

namespace {

Bytes frame_body(std::uint64_t seq, std::span<const std::uint8_t> payload) {
  ByteWriter w;
  w.u64(seq);
  w.raw(payload);
  return w.take();
}

struct ParsedFrame {
  std::uint64_t seq;
  Bytes payload;
};

ParsedFrame parse_frame(const Bytes& body) {
  ByteReader r(body);
  ParsedFrame f;
  f.seq = r.u64();
  f.payload = r.raw(r.remaining());
  return f;
}

}  // namespace

RemoteStore::RemoteStore(RemoteStoreConfig cfg) : cfg_(std::move(cfg)) {
  server_key_ = ec::p256_from_bytes(cfg_.server_identity);
  if (server_key_.is_infinity() || !server_key_.on_curve()) {
    throw std::invalid_argument("RemoteStore: invalid pinned server identity");
  }
}

RemoteStore::~RemoteStore() {
  std::lock_guard lock(mutex_);
  drop_locked();
}

void RemoteStore::disconnect() {
  std::lock_guard lock(mutex_);
  drop_locked();
}

std::uint64_t RemoteStore::resumes() const {
  std::lock_guard lock(mutex_);
  return resumes_;
}

std::uint64_t RemoteStore::wire_retries() const {
  std::lock_guard lock(mutex_);
  return wire_retries_;
}

void RemoteStore::drop_locked() const {
  if (transport_) transport_->close();
  transport_.reset();
  tx_.reset();
  rx_.reset();
  send_seq_ = 0;
  last_recv_seq_ = 0;
}

void RemoteStore::connect_locked() const {
  if (transport_ && transport_->is_open() && tx_) return;
  drop_locked();

  std::unique_ptr<Transport> t =
      SocketTransport::connect_loopback(cfg_.port, cfg_.connect_timeout);
  if (cfg_.faults) {
    t = std::make_unique<FaultInjectingTransport>(std::move(t), cfg_.faults);
  }

  // Fresh ephemeral every handshake; the resume proof binds the OLD resume
  // secret to the NEW ephemeral, so a replayed ClientHello proves nothing.
  crypto::Drbg rng;
  field::P256Fr eph_secret;
  do {
    eph_secret = field::P256Fr::from_be_bytes_reduce(rng.bytes(32));
  } while (eph_secret.is_zero());
  ClientHello hello;
  hello.eph_pub = ec::p256_to_bytes(ec::P256Point::generator().mul(eph_secret));
  if (session_id_ != 0 && !resume_secret_.empty()) {
    hello.session_id = session_id_;
    hello.resume_proof = make_resume_proof(resume_secret_, hello.eph_pub);
  }
  t->send_frame(frame_body(0, hello.to_bytes()));

  auto frame = t->recv_frame(cfg_.connect_timeout);
  if (!frame) {
    t->close();
    throw TransientError("net handshake: no ServerHello before deadline");
  }
  auto parsed = parse_frame(*frame);
  ServerHello reply;
  try {
    if (parsed.seq != 0) throw util::DeserializeError("non-handshake frame");
    reply = ServerHello::from_bytes(parsed.payload);
  } catch (const util::DeserializeError& e) {
    t->close();
    throw TransientError(std::string("net handshake: ") + e.what());
  }

  auto transcript = handshake_transcript(hello.eph_pub, reply.eph_pub,
                                         reply.session_id, reply.outcome);
  pki::EcdsaSignature sig;
  try {
    sig = pki::EcdsaSignature::from_bytes(reply.signature);
  } catch (const util::DeserializeError&) {
    t->close();
    throw IntegrityError("net handshake: malformed server signature");
  }
  if (!pki::ecdsa_verify(server_key_, transcript, sig)) {
    t->close();
    throw IntegrityError(
        "net handshake: server signature does not verify against the pinned "
        "identity key");
  }

  if (reply.outcome == ServerHello::busy) {
    t->close();
    throw TransientError("net handshake: server busy (overload shed)");
  }

  ec::P256Point server_eph;
  try {
    server_eph = ec::p256_from_bytes(reply.eph_pub);
  } catch (const util::DeserializeError&) {
    t->close();
    throw IntegrityError("net handshake: malformed server ephemeral");
  }
  if (server_eph.is_infinity() || !server_eph.on_curve()) {
    t->close();
    throw IntegrityError("net handshake: invalid server ephemeral");
  }

  SessionKeys keys = derive_session_keys(server_eph.mul(eph_secret),
                                         hello.eph_pub, reply.eph_pub);
  if (reply.outcome == ServerHello::resumed) ++resumes_;
  session_id_ = reply.session_id;
  resume_secret_ = keys.resume_secret;
  tx_.emplace(keys.client_to_server, 'c');
  rx_.emplace(keys.server_to_client, 's');
  send_seq_ = 0;
  last_recv_seq_ = 0;
  transport_ = std::move(t);
}

Response RemoteStore::attempt_locked(const Request& req) const {
  connect_locked();
  auto sealed = tx_->seal(++send_seq_, req.to_bytes());
  transport_->send_frame(frame_body(send_seq_, sealed));

  auto deadline = std::chrono::steady_clock::now() + cfg_.request_deadline;
  if (req.op == Op::long_poll) {
    // The server legitimately holds the response for up to the poll window.
    deadline += std::chrono::milliseconds(req.timeout_ms);
  }
  while (true) {
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      throw TransientError("net rpc: response deadline exceeded");
    }
    auto frame = transport_->recv_frame(remaining);
    if (!frame) {
      throw TransientError("net rpc: response deadline exceeded");
    }
    auto parsed = parse_frame(*frame);
    if (parsed.seq <= last_recv_seq_) continue;  // duplicate delivery
    auto payload = rx_->open(parsed.seq, parsed.payload);
    if (!payload) {
      transport_->close();
      throw IntegrityError(
          "net rpc: frame failed AEAD authentication (tampering or "
          "corruption on the wire)");
    }
    last_recv_seq_ = parsed.seq;
    Response resp;
    try {
      resp = Response::from_bytes(*payload);
    } catch (const util::DeserializeError& e) {
      transport_->close();
      throw IntegrityError(std::string("net rpc: authenticated frame failed "
                                       "to parse: ") +
                           e.what());
    }
    if (resp.id != req.id) continue;  // answer to an abandoned attempt
    return resp;
  }
}

Response RemoteStore::rpc(Request req) const {
  std::lock_guard lock(mutex_);
  // One id per LOGICAL call, stable across every retry below: the server's
  // dedup key for mutations whose first response was lost.
  req.id = next_request_id_++;
  // Reject an unsendable request before any wire traffic: retrying the same
  // oversized value can never succeed, so it must not surface as a transient
  // (or worse, escape as std::length_error from deep inside send_frame and
  // bypass the retry/deadline discipline entirely).
  if (req.to_bytes().size() > max_record_bytes) {
    throw std::invalid_argument(
        "net rpc: serialized request exceeds max_frame_bytes (" +
        std::to_string(max_frame_bytes) + ") and can never be sent");
  }
  const auto start = std::chrono::steady_clock::now();
  const auto& policy = cfg_.retry;
  for (int attempt = 1;; ++attempt) {
    bool busy = false;
    std::optional<Response> got;
    try {
      Response resp = attempt_locked(req);
      if (resp.status == Status::busy) {
        busy = true;  // explicit shed: retry with backoff below
      } else {
        got = std::move(resp);
      }
    } catch (const TransientError&) {
      drop_locked();
      if (attempt >= policy.max_attempts) throw;
      if (policy.deadline.count() > 0 &&
          std::chrono::steady_clock::now() - start >= policy.deadline) {
        throw;
      }
    }
    if (got) {
      // Typed store-side faults re-throw here — outside the wire-retry
      // catch — so they never consume wire attempts; the layers above own
      // that policy, same as in-process.
      throw_if_store_fault(*got);
      return std::move(*got);
    }
    if (busy) {
      if (attempt >= policy.max_attempts) {
        throw TransientError("net rpc: server busy and retry budget exhausted");
      }
      if (policy.deadline.count() > 0 &&
          std::chrono::steady_clock::now() - start >= policy.deadline) {
        throw TransientError("net rpc: server busy and retry deadline passed");
      }
    }
    ++wire_retries_;
    auto pause = policy.delay(attempt);
    if (pause.count() > 0) std::this_thread::sleep_for(pause);
  }
}

std::uint64_t RemoteStore::put(const std::string& path, util::Bytes value) {
  Request q;
  q.op = Op::put;
  q.path = path;
  q.value = std::move(value);
  return rpc(std::move(q)).version;
}

std::optional<std::uint64_t> RemoteStore::put_cas(const std::string& path,
                                                  util::Bytes value,
                                                  std::uint64_t expected) {
  Request q;
  q.op = Op::put_cas;
  q.path = path;
  q.value = std::move(value);
  q.expected = expected;
  Response r = rpc(std::move(q));
  if (r.status == Status::conflict) return std::nullopt;
  return r.version;
}

std::optional<util::Bytes> RemoteStore::get(const std::string& path) const {
  Request q;
  q.op = Op::get;
  q.path = path;
  Response r = rpc(std::move(q));
  if (r.status == Status::not_found) return std::nullopt;
  return std::move(r.value);
}

std::optional<cloud::CloudStore::Versioned> RemoteStore::get_versioned(
    const std::string& path) const {
  Request q;
  q.op = Op::get_versioned;
  q.path = path;
  Response r = rpc(std::move(q));
  if (r.status == Status::not_found) return std::nullopt;
  return Versioned{std::move(r.value), r.version};
}

std::uint64_t RemoteStore::file_version(const std::string& path) const {
  Request q;
  q.op = Op::file_version;
  q.path = path;
  return rpc(std::move(q)).version;
}

bool RemoteStore::erase(const std::string& path) {
  Request q;
  q.op = Op::erase;
  q.path = path;
  return rpc(std::move(q)).flag;
}

std::vector<std::string> RemoteStore::list(const std::string& prefix) const {
  Request q;
  q.op = Op::list;
  q.path = prefix;
  return rpc(std::move(q)).names;
}

std::uint64_t RemoteStore::dir_version(const std::string& dir) const {
  Request q;
  q.op = Op::dir_version;
  q.path = dir;
  return rpc(std::move(q)).version;
}

std::optional<std::uint64_t> RemoteStore::long_poll(
    const std::string& dir, std::uint64_t since,
    std::chrono::milliseconds timeout) const {
  Request q;
  q.op = Op::long_poll;
  q.path = dir;
  q.since = since;
  q.timeout_ms = static_cast<std::uint64_t>(std::max<std::int64_t>(
      0, timeout.count()));
  Response r = rpc(std::move(q));
  // flag == false is the server-side poll timeout: a successful round trip
  // that consumed no retry attempts, reported exactly like the in-process
  // store reports it.
  if (!r.flag) return std::nullopt;
  return r.version;
}

cloud::CloudStats RemoteStore::stats() const {
  Request q;
  q.op = Op::stats;
  return rpc(std::move(q)).stats;
}

std::size_t RemoteStore::stored_bytes() const {
  Request q;
  q.op = Op::stored_bytes;
  return rpc(std::move(q)).bytes;
}

}  // namespace ibbe::net
