# Empty dependencies file for ibbe_test.
# This may be replaced when dependencies are built.
