file(REMOVE_RECURSE
  "CMakeFiles/ibbe_test.dir/tests/ibbe_test.cpp.o"
  "CMakeFiles/ibbe_test.dir/tests/ibbe_test.cpp.o.d"
  "ibbe_test"
  "ibbe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibbe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
