# Empty dependencies file for fuzz_deserialize_test.
# This may be replaced when dependencies are built.
