file(REMOVE_RECURSE
  "CMakeFiles/fuzz_deserialize_test.dir/tests/fuzz_deserialize_test.cpp.o"
  "CMakeFiles/fuzz_deserialize_test.dir/tests/fuzz_deserialize_test.cpp.o.d"
  "fuzz_deserialize_test"
  "fuzz_deserialize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_deserialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
