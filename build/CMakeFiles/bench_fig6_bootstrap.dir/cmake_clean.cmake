file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_bootstrap.dir/bench/bench_fig6_bootstrap.cpp.o"
  "CMakeFiles/bench_fig6_bootstrap.dir/bench/bench_fig6_bootstrap.cpp.o.d"
  "bench_fig6_bootstrap"
  "bench_fig6_bootstrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
