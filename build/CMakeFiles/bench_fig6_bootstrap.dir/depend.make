# Empty dependencies file for bench_fig6_bootstrap.
# This may be replaced when dependencies are built.
