# Empty dependencies file for bench_fig2_raw_schemes.
# This may be replaced when dependencies are built.
