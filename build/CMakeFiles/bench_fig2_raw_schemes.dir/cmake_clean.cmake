file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_raw_schemes.dir/bench/bench_fig2_raw_schemes.cpp.o"
  "CMakeFiles/bench_fig2_raw_schemes.dir/bench/bench_fig2_raw_schemes.cpp.o.d"
  "bench_fig2_raw_schemes"
  "bench_fig2_raw_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_raw_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
