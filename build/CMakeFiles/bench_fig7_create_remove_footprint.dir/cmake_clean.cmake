file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_create_remove_footprint.dir/bench/bench_fig7_create_remove_footprint.cpp.o"
  "CMakeFiles/bench_fig7_create_remove_footprint.dir/bench/bench_fig7_create_remove_footprint.cpp.o.d"
  "bench_fig7_create_remove_footprint"
  "bench_fig7_create_remove_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_create_remove_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
