# Empty dependencies file for bench_fig7_create_remove_footprint.
# This may be replaced when dependencies are built.
