# Empty dependencies file for bench_fig10_synthetic.
# This may be replaced when dependencies are built.
