file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_synthetic.dir/bench/bench_fig10_synthetic.cpp.o"
  "CMakeFiles/bench_fig10_synthetic.dir/bench/bench_fig10_synthetic.cpp.o.d"
  "bench_fig10_synthetic"
  "bench_fig10_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
