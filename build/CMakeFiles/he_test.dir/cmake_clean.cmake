file(REMOVE_RECURSE
  "CMakeFiles/he_test.dir/tests/he_test.cpp.o"
  "CMakeFiles/he_test.dir/tests/he_test.cpp.o.d"
  "he_test"
  "he_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/he_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
