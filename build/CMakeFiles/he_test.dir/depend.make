# Empty dependencies file for he_test.
# This may be replaced when dependencies are built.
