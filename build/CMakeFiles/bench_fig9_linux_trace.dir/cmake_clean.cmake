file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_linux_trace.dir/bench/bench_fig9_linux_trace.cpp.o"
  "CMakeFiles/bench_fig9_linux_trace.dir/bench/bench_fig9_linux_trace.cpp.o.d"
  "bench_fig9_linux_trace"
  "bench_fig9_linux_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_linux_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
