file(REMOVE_RECURSE
  "CMakeFiles/pay_tv_broadcast.dir/examples/pay_tv_broadcast.cpp.o"
  "CMakeFiles/pay_tv_broadcast.dir/examples/pay_tv_broadcast.cpp.o.d"
  "pay_tv_broadcast"
  "pay_tv_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pay_tv_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
