# Empty dependencies file for pay_tv_broadcast.
# This may be replaced when dependencies are built.
