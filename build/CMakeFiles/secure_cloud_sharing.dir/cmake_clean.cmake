file(REMOVE_RECURSE
  "CMakeFiles/secure_cloud_sharing.dir/examples/secure_cloud_sharing.cpp.o"
  "CMakeFiles/secure_cloud_sharing.dir/examples/secure_cloud_sharing.cpp.o.d"
  "secure_cloud_sharing"
  "secure_cloud_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_cloud_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
