# Empty dependencies file for secure_cloud_sharing.
# This may be replaced when dependencies are built.
