file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_add_decrypt.dir/bench/bench_fig8_add_decrypt.cpp.o"
  "CMakeFiles/bench_fig8_add_decrypt.dir/bench/bench_fig8_add_decrypt.cpp.o.d"
  "bench_fig8_add_decrypt"
  "bench_fig8_add_decrypt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_add_decrypt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
