# Empty dependencies file for bench_fig8_add_decrypt.
# This may be replaced when dependencies are built.
