# Empty dependencies file for team_churn_replay.
# This may be replaced when dependencies are built.
