file(REMOVE_RECURSE
  "CMakeFiles/team_churn_replay.dir/examples/team_churn_replay.cpp.o"
  "CMakeFiles/team_churn_replay.dir/examples/team_churn_replay.cpp.o.d"
  "team_churn_replay"
  "team_churn_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/team_churn_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
