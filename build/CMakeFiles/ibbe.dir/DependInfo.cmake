
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bigint/biguint.cpp" "CMakeFiles/ibbe.dir/src/bigint/biguint.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/bigint/biguint.cpp.o.d"
  "/root/repo/src/bigint/mont.cpp" "CMakeFiles/ibbe.dir/src/bigint/mont.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/bigint/mont.cpp.o.d"
  "/root/repo/src/bigint/u256.cpp" "CMakeFiles/ibbe.dir/src/bigint/u256.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/bigint/u256.cpp.o.d"
  "/root/repo/src/cloud/store.cpp" "CMakeFiles/ibbe.dir/src/cloud/store.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/cloud/store.cpp.o.d"
  "/root/repo/src/crypto/aes256.cpp" "CMakeFiles/ibbe.dir/src/crypto/aes256.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/crypto/aes256.cpp.o.d"
  "/root/repo/src/crypto/chacha20.cpp" "CMakeFiles/ibbe.dir/src/crypto/chacha20.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/crypto/chacha20.cpp.o.d"
  "/root/repo/src/crypto/drbg.cpp" "CMakeFiles/ibbe.dir/src/crypto/drbg.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/crypto/drbg.cpp.o.d"
  "/root/repo/src/crypto/gcm.cpp" "CMakeFiles/ibbe.dir/src/crypto/gcm.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/crypto/gcm.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "CMakeFiles/ibbe.dir/src/crypto/hmac.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "CMakeFiles/ibbe.dir/src/crypto/sha256.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/crypto/sha256.cpp.o.d"
  "/root/repo/src/ec/curves.cpp" "CMakeFiles/ibbe.dir/src/ec/curves.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/ec/curves.cpp.o.d"
  "/root/repo/src/enclave/ibbe_enclave.cpp" "CMakeFiles/ibbe.dir/src/enclave/ibbe_enclave.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/enclave/ibbe_enclave.cpp.o.d"
  "/root/repo/src/field/fp12.cpp" "CMakeFiles/ibbe.dir/src/field/fp12.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/field/fp12.cpp.o.d"
  "/root/repo/src/field/fp2.cpp" "CMakeFiles/ibbe.dir/src/field/fp2.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/field/fp2.cpp.o.d"
  "/root/repo/src/field/fp6.cpp" "CMakeFiles/ibbe.dir/src/field/fp6.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/field/fp6.cpp.o.d"
  "/root/repo/src/field/tower_consts.cpp" "CMakeFiles/ibbe.dir/src/field/tower_consts.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/field/tower_consts.cpp.o.d"
  "/root/repo/src/he/he_ibe.cpp" "CMakeFiles/ibbe.dir/src/he/he_ibe.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/he/he_ibe.cpp.o.d"
  "/root/repo/src/he/he_pki.cpp" "CMakeFiles/ibbe.dir/src/he/he_pki.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/he/he_pki.cpp.o.d"
  "/root/repo/src/ibbe/ibbe.cpp" "CMakeFiles/ibbe.dir/src/ibbe/ibbe.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/ibbe/ibbe.cpp.o.d"
  "/root/repo/src/pairing/gt.cpp" "CMakeFiles/ibbe.dir/src/pairing/gt.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/pairing/gt.cpp.o.d"
  "/root/repo/src/pairing/pairing.cpp" "CMakeFiles/ibbe.dir/src/pairing/pairing.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/pairing/pairing.cpp.o.d"
  "/root/repo/src/pki/cert.cpp" "CMakeFiles/ibbe.dir/src/pki/cert.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/pki/cert.cpp.o.d"
  "/root/repo/src/pki/ecdsa.cpp" "CMakeFiles/ibbe.dir/src/pki/ecdsa.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/pki/ecdsa.cpp.o.d"
  "/root/repo/src/pki/ecies.cpp" "CMakeFiles/ibbe.dir/src/pki/ecies.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/pki/ecies.cpp.o.d"
  "/root/repo/src/sgx/attestation.cpp" "CMakeFiles/ibbe.dir/src/sgx/attestation.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/sgx/attestation.cpp.o.d"
  "/root/repo/src/sgx/enclave.cpp" "CMakeFiles/ibbe.dir/src/sgx/enclave.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/sgx/enclave.cpp.o.d"
  "/root/repo/src/system/admin.cpp" "CMakeFiles/ibbe.dir/src/system/admin.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/system/admin.cpp.o.d"
  "/root/repo/src/system/advisor.cpp" "CMakeFiles/ibbe.dir/src/system/advisor.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/system/advisor.cpp.o.d"
  "/root/repo/src/system/client.cpp" "CMakeFiles/ibbe.dir/src/system/client.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/system/client.cpp.o.d"
  "/root/repo/src/system/ibbe_scheme.cpp" "CMakeFiles/ibbe.dir/src/system/ibbe_scheme.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/system/ibbe_scheme.cpp.o.d"
  "/root/repo/src/system/metadata.cpp" "CMakeFiles/ibbe.dir/src/system/metadata.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/system/metadata.cpp.o.d"
  "/root/repo/src/system/oplog.cpp" "CMakeFiles/ibbe.dir/src/system/oplog.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/system/oplog.cpp.o.d"
  "/root/repo/src/trace/replay.cpp" "CMakeFiles/ibbe.dir/src/trace/replay.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/trace/replay.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "CMakeFiles/ibbe.dir/src/trace/trace.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/trace/trace.cpp.o.d"
  "/root/repo/src/util/bytes.cpp" "CMakeFiles/ibbe.dir/src/util/bytes.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/util/bytes.cpp.o.d"
  "/root/repo/src/util/hex.cpp" "CMakeFiles/ibbe.dir/src/util/hex.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/util/hex.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/ibbe.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/ibbe.dir/src/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
