file(REMOVE_RECURSE
  "libibbe.a"
)
