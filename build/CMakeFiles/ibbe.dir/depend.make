# Empty dependencies file for ibbe.
# This may be replaced when dependencies are built.
