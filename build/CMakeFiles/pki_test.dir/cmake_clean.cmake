file(REMOVE_RECURSE
  "CMakeFiles/pki_test.dir/tests/pki_test.cpp.o"
  "CMakeFiles/pki_test.dir/tests/pki_test.cpp.o.d"
  "pki_test"
  "pki_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pki_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
