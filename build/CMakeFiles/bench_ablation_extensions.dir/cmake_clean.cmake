file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_extensions.dir/bench/bench_ablation_extensions.cpp.o"
  "CMakeFiles/bench_ablation_extensions.dir/bench/bench_ablation_extensions.cpp.o.d"
  "bench_ablation_extensions"
  "bench_ablation_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
