# Empty dependencies file for model_based_test.
# This may be replaced when dependencies are built.
