file(REMOVE_RECURSE
  "CMakeFiles/model_based_test.dir/tests/model_based_test.cpp.o"
  "CMakeFiles/model_based_test.dir/tests/model_based_test.cpp.o.d"
  "model_based_test"
  "model_based_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_based_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
